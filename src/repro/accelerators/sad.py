"""SAD (sum of absolute differences) accelerator (paper Sec. 6, Fig. 8/9).

The SAD accelerator is the paper's running case study: the motion
estimation of an HEVC-like encoder computes, for every candidate block,

    SAD(A, B) = sum_i |a_i - b_i|

through a datapath of subtractors, absolute-value stages, and an adder
tree.  Approximation enters through the full-adder cell used in the
subtractors/adders and the number of approximated LSBs -- giving the
``ApxSAD1 .. ApxSAD5`` variants of Fig. 8 (one per Table III cell).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..adders.characterize import adder_energy_per_op_fj
from ..adders.ripple import ApproximateRippleAdder, _as_int_array

__all__ = [
    "SADAccelerator",
    "make_sad_variants",
    "characterize_sad_family",
    "sad_family_tasks",
    "SAD_VARIANT_CELLS",
]

#: Pixel widths up to this get a full pairwise ``|a - b|`` table
#: (``2**(2*bits)`` int64 entries -- 512 KiB at 8-bit video pixels).
_ABSDIFF_LUT_MAX_PIXEL_BITS = 8

#: A tree level is fused into one value-folded table only while
#: ``2**(width + approx_lsbs)`` entries stay reasonable (8 MiB of int64
#: at the cap); wider levels fall back to the adder's own fast path.
_FUSED_ADD_LUT_MAX_BITS = 20


def _fused_add_lut(adder: ApproximateRippleAdder):
    """Collapse one tree adder into a value-folded table (or a marker).

    Tree operands are *trusted*: ``_check_tree_widths`` guarantees both
    inputs fit in ``adder.width`` bits and the tree always adds with
    ``cin = 0``.  Under those conditions ``adder.add(a, b)`` depends
    only on ``a`` (all of it) and the low ``s = num_approx_lsbs`` bits
    of ``b`` -- b's accurate MSBs contribute the exact value
    ``b - b_lo`` -- so one table covers the whole add:

        T[(x << s) | y] = adder.add(x, y)          (y < 2**s)
        adder.add(a, b) = T[(a << s) | (b & lo)] + (b - (b & lo))

    Returns ``"native"`` for exact levels (``s == 0``: the trusted add
    is literally ``a + b``), the table for fusable levels, or ``None``
    when the table would be too large or the accurate cell is not the
    exact ``AccuFA`` (callers then fall back to ``adder.add``).
    """
    if not adder._msb_native:
        return None
    s = adder.num_approx_lsbs
    if s == 0:
        return "native"
    if adder.width + s > _FUSED_ADD_LUT_MAX_BITS:
        return None
    table = adder.add(
        np.repeat(np.arange(1 << adder.width, dtype=np.int64), 1 << s),
        np.tile(np.arange(1 << s, dtype=np.int64), 1 << adder.width),
    )
    table.setflags(write=False)
    return table


#: Approximate cell behind each published SAD variant name.
SAD_VARIANT_CELLS: Dict[str, str] = {
    "AccuSAD": "AccuFA",
    "ApxSAD1": "ApxFA1",
    "ApxSAD2": "ApxFA2",
    "ApxSAD3": "ApxFA3",
    "ApxSAD4": "ApxFA4",
    "ApxSAD5": "ApxFA5",
}


class SADAccelerator:
    """Sum-of-absolute-differences datapath with approximate arithmetic.

    Args:
        n_pixels: Number of pixel pairs reduced per SAD (e.g. 64 for an
            8x8 block).
        pixel_bits: Pixel bit-width (8 for video).
        fa: Table III full-adder cell used in the approximated LSBs of
            every subtractor and tree adder.
        approx_lsbs: Number of approximated LSBs in each arithmetic
            stage (0 = fully accurate accelerator).
        eval_mode: Evaluation engine for every subtractor and tree adder
            (``"auto"``/``"lut"`` = segment/LUT fast path, ``"loop"`` =
            legacy cell-level reference; bit-identical results).
            ``"partsim"`` runs the whole reduction tree on the
            partitioned-SIMD evaluator: pixels are loaded in
            bit-reversed order so every tree level becomes one
            word-half fold over packed partition words, with
            approximate LSBs rippled by
            :func:`repro.datapath.partsim.packed_cell_ripple` on all
            packed blocks at once.  Requires a power-of-two
            ``n_pixels`` and ``pixel_bits <= 8``; bit-identical to the
            other engines.

    Example:
        >>> acc = SADAccelerator(n_pixels=4)
        >>> int(acc.sad([1, 2, 3, 4], [4, 3, 2, 1]))
        8
    """

    def __init__(
        self,
        n_pixels: int = 64,
        pixel_bits: int = 8,
        fa: str = "AccuFA",
        approx_lsbs: int = 0,
        eval_mode: str = "auto",
    ) -> None:
        if n_pixels < 1:
            raise ValueError(f"n_pixels must be >= 1, got {n_pixels}")
        if approx_lsbs < 0:
            raise ValueError(f"approx_lsbs must be >= 0, got {approx_lsbs}")
        self.n_pixels = n_pixels
        self.pixel_bits = pixel_bits
        self.fa = fa
        self.approx_lsbs = approx_lsbs
        self.eval_mode = eval_mode
        self._partsim_layout = None
        if eval_mode == "partsim":
            if n_pixels & (n_pixels - 1):
                raise ValueError(
                    "partsim SAD needs a power-of-two n_pixels (the tree "
                    f"folds word halves), got {n_pixels}"
                )
            if pixel_bits > _ABSDIFF_LUT_MAX_PIXEL_BITS:
                raise ValueError(
                    "partsim SAD needs the pairwise |a-b| table, so "
                    f"pixel_bits <= {_ABSDIFF_LUT_MAX_PIXEL_BITS} "
                    f"(got {pixel_bits})"
                )
        # The packed tree evaluates the per-stage cells itself; the
        # member adders only provide truth tables / fused LUTs and run
        # in "auto" for table construction.
        inner_mode = "auto" if eval_mode == "partsim" else eval_mode
        self._sub = ApproximateRippleAdder(
            pixel_bits,
            approx_fa=fa,
            num_approx_lsbs=min(approx_lsbs, pixel_bits),
            eval_mode=inner_mode,
        )
        # Tree adders: one width per reduction level.  For n_pixels that
        # are not powers of two the odd element of a level is *wired*
        # through to the next level (no adder), so a value entering the
        # level-i adder may originate several levels up; the level
        # widths below must therefore be checked against the widest
        # value any earlier level can emit, not just the direct
        # predecessor (see _check_tree_widths).
        self._tree: List[ApproximateRippleAdder] = []
        width = pixel_bits
        remaining = n_pixels
        while remaining > 1:
            width += 1
            self._tree.append(
                ApproximateRippleAdder(
                    width,
                    approx_fa=fa,
                    num_approx_lsbs=min(approx_lsbs, width),
                    eval_mode=inner_mode,
                )
            )
            remaining = (remaining + 1) // 2
        self._check_tree_widths()
        # Fused-LUT datapath (fast engines only): the per-pixel |a - b|
        # stage and each tree-level add each collapse into a single
        # int64 gather.  Bit-identical by construction -- every table is
        # filled by evaluating the corresponding ripple-adder stage.
        self._absdiff_lut: np.ndarray | None = None
        self._tree_fused: list = []
        if eval_mode != "loop":
            if pixel_bits <= _ABSDIFF_LUT_MAX_PIXEL_BITS:
                n_vals = 1 << pixel_bits
                lut = np.abs(
                    self._sub.sub(
                        np.repeat(np.arange(n_vals, dtype=np.int64), n_vals),
                        np.tile(np.arange(n_vals, dtype=np.int64), n_vals),
                    )
                )
                lut.setflags(write=False)
                self._absdiff_lut = lut
            self._tree_fused = [_fused_add_lut(adder) for adder in self._tree]

    def _check_tree_widths(self) -> None:
        """Verify every reduction level is wide enough for its operands.

        A level-i adder of width ``w`` truncates operand bits >= ``w``,
        so a carried (wired-through) odd element must still fit.  The
        widest value at a level is ``pixel_bits + 1 + i`` bits (the
        approximate subtractor can emit ``|a-b| = 2**pixel_bits``, and
        each adder level appends one carry bit); wired-through elements
        are always *narrower* than the level's pair sums, so the direct
        bound suffices.  This guards the invariant the odd-element
        bypass relies on.
        """
        max_bits = self.pixel_bits + 1  # |a - b| can reach 2**pixel_bits
        for level, adder in enumerate(self._tree):
            if adder.width < max_bits:
                raise AssertionError(
                    f"tree level {level} adder width {adder.width} cannot "
                    f"hold {max_bits}-bit operands"
                )
            max_bits = adder.width + 1  # add() emits width+1 bits

    @property
    def name(self) -> str:
        for variant, cell in SAD_VARIANT_CELLS.items():
            if cell == self.fa:
                return f"{variant}(lsbs={self.approx_lsbs})"
        return f"SAD[{self.fa}x{self.approx_lsbs}]"

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def absolute_differences(self, a, b) -> np.ndarray:
        """Per-pixel ``|a - b|`` through the approximate subtractor.

        With a fast engine and video-width pixels the whole subtract +
        absolute-value stage is one gather from a precomputed pairwise
        table; the table itself was filled through ``self._sub.sub``, so
        the result is bit-identical to the explicit datapath.
        """
        a = _as_int_array(a)
        b = _as_int_array(b)
        if self._absdiff_lut is not None:
            mask = (1 << self.pixel_bits) - 1
            return self._absdiff_lut[
                ((a & mask) << self.pixel_bits) | (b & mask)
            ]
        diff = self._sub.sub(a, b)
        return np.abs(diff)

    def _tree_add(self, level: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One reduction-level add on *trusted* operands.

        Operands here are prior-stage outputs already proven to fit the
        level's width (``_check_tree_widths``), so fused levels skip the
        adder's validation/masking and cost one gather plus one add.
        """
        adder = self._tree[level]
        fused = self._tree_fused[level] if self._tree_fused else None
        if fused is None:
            return adder.add(a, b)
        if isinstance(fused, str):  # "native": exact level
            return a + b
        b_lo = b & ((1 << adder.num_approx_lsbs) - 1)
        return fused[(a << adder.num_approx_lsbs) | b_lo] + (b - b_lo)

    def _packed_tree_add(
        self, level: int, layout, wa: np.ndarray, wb: np.ndarray
    ) -> np.ndarray:
        """One reduction level on packed partition words.

        Same trusted-operand contract as :meth:`_tree_add`, evaluated
        on every packed field at once: the approximated LSBs ripple the
        level's cell truth table via ``packed_cell_ripple`` and the
        accurate MSBs are a native word add (guard bits absorb the
        per-field carries).
        """
        from ..datapath.partsim import packed_cell_ripple

        adder = self._tree[level]
        s = adder.num_approx_lsbs
        if s == 0:
            return wa + wb
        sum_lo, carry = packed_cell_ripple(
            layout, wa, wb, np.uint64(0), adder.approx_fa.table, 0, s
        )
        mask_hi = layout.spread((1 << (adder.width - s)) - 1)
        hi = ((wa >> s) & mask_hi) + ((wb >> s) & mask_hi) + carry
        return (hi << s) | sum_lo

    def _sad_partsim(self, values: np.ndarray) -> np.ndarray:
        """Packed reduction of per-pixel ``|a - b|`` values.

        Loading the leaves in bit-reversed order turns the adjacent
        even/odd pairing of :meth:`sad` into "add the first half to the
        second half" at *every* level, with the even operand always in
        the first half -- so while more than one word remains, a level
        is one word-half fold.  The in-word tail (the last
        ``fields_per_word`` partial sums) finishes through the scalar
        trusted-path :meth:`_tree_add`, keeping cell order and operand
        roles bit-identical to the reference tree.
        """
        from ..datapath.partsim import (
            PartitionLayout,
            bit_reverse_permutation,
        )

        if not self._tree:
            return values[..., 0]
        if self._partsim_layout is None:
            self._partsim_layout = PartitionLayout(self._tree[-1].width + 1)
        layout = self._partsim_layout
        words = layout.pack(values[..., bit_reverse_permutation(self.n_pixels)])
        level = 0
        while words.shape[-1] > 1:
            half = words.shape[-1] // 2
            words = self._packed_tree_add(
                level, layout, words[..., :half], words[..., half:]
            )
            level += 1
        vals = layout.unpack(words, min(self.n_pixels, layout.fields_per_word))
        while vals.shape[-1] > 1:
            half = vals.shape[-1] // 2
            vals = self._tree_add(level, vals[..., :half], vals[..., half:])
            level += 1
        return vals[..., 0]

    def sad(self, a, b) -> np.ndarray:
        """SAD over the last axis (must have length ``n_pixels``).

        Inputs may carry arbitrary leading batch dimensions; one SAD is
        produced per batch element.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape[-1] != self.n_pixels or b.shape[-1] != self.n_pixels:
            raise ValueError(
                f"last axis must have {self.n_pixels} pixels, got "
                f"{a.shape[-1]} and {b.shape[-1]}"
            )
        values = self.absolute_differences(a, b)
        if self.eval_mode == "partsim":
            return self._sad_partsim(values)
        level = 0
        while values.shape[-1] > 1:
            n = values.shape[-1]
            even = values[..., 0 : n - (n % 2) : 2]
            odd = values[..., 1 : n : 2]
            summed = self._tree_add(level, even, odd)
            if n % 2:
                # Non-power-of-two reduction: the odd element is wired
                # through to the next level unchanged (no adder cell
                # touches it).  This is safe because level widths grow
                # monotonically -- a wired-through value is always
                # narrower than the receiving adder (_check_tree_widths)
                # -- and it matches the physical datapath, where an
                # unpaired bus is registered, not re-added.
                summed = np.concatenate(
                    [summed, values[..., -1:]], axis=-1
                )
            values = summed
            level += 1
        return values[..., 0]

    # ------------------------------------------------------------------
    # physical roll-ups
    # ------------------------------------------------------------------
    @property
    def area_ge(self) -> float:
        """Subtractors (one per pixel) + the full adder tree."""
        total = self._sub.area_ge * self.n_pixels
        remaining = self.n_pixels
        for adder in self._tree:
            pairs = remaining // 2
            total += adder.area_ge * pairs
            remaining = (remaining + 1) // 2
        return total

    @property
    def energy_per_op_fj(self) -> float:
        """Switching energy of one full SAD evaluation."""
        total = adder_energy_per_op_fj(self._sub) * self.n_pixels
        remaining = self.n_pixels
        for adder in self._tree:
            pairs = remaining // 2
            total += adder_energy_per_op_fj(adder) * pairs
            remaining = (remaining + 1) // 2
        return total

    def power_nw(self, ops_per_second: float = 1e6) -> float:
        """Average power at a given SAD throughput."""
        # fJ/op * ops/s = 1e-15 W; report nW.
        return self.energy_per_op_fj * ops_per_second * 1e-15 * 1e9

    def __repr__(self) -> str:
        return (
            f"SADAccelerator(n_pixels={self.n_pixels}, fa={self.fa!r}, "
            f"approx_lsbs={self.approx_lsbs})"
        )


def sad_family_tasks(
    n_pixels: int = 64,
    lsb_counts: tuple = (2, 4, 6),
    n_samples: int = 3000,
    seed: int = 0,
) -> list:
    """Campaign tasks for the (cell, LSB-count) SAD family sweep.

    All tasks share the sweep seed, so every variant is measured on the
    same random blocks -- the fan-out reproduces the serial sweep bit
    for bit.
    """
    from ..campaign import CampaignTask

    tasks = [
        CampaignTask(
            kind="sad_quality",
            params={
                "n_pixels": n_pixels,
                "fa": "AccuFA",
                "approx_lsbs": 0,
                "n_samples": n_samples,
                "name": "AccuSAD",
            },
            seed=seed,
        )
    ]
    for variant, cell in SAD_VARIANT_CELLS.items():
        if variant == "AccuSAD":
            continue
        for lsbs in lsb_counts:
            tasks.append(
                CampaignTask(
                    kind="sad_quality",
                    params={
                        "n_pixels": n_pixels,
                        "fa": cell,
                        "approx_lsbs": int(lsbs),
                        "n_samples": n_samples,
                        "name": f"{variant}/{lsbs}",
                    },
                    seed=seed,
                )
            )
    return tasks


def characterize_sad_family(
    n_pixels: int = 64,
    lsb_counts: tuple = (2, 4, 6),
    n_samples: int = 3000,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> list:
    """Quality/energy records for every (cell, LSB-count) SAD variant.

    Quality is measured against the exact SAD on uniform random blocks;
    energy from the per-cell switching model.  The records feed the
    approximation manager and the CLI.  The sweep runs as a campaign
    (:func:`repro.campaign.run_campaign`): ``n_workers`` fans the
    variants out over processes, ``cache_dir`` reuses / checkpoints
    finished records, and results are bit-identical for any worker
    count.

    Returns:
        List of dicts with ``name``, ``fa``, ``approx_lsbs``,
        ``mean_error_distance``, ``mean_relative_error`` and
        ``energy_fj``.
    """
    from ..campaign import run_campaign

    tasks = sad_family_tasks(
        n_pixels, lsb_counts=lsb_counts, n_samples=n_samples, seed=seed
    )
    return list(
        run_campaign(tasks, n_workers=n_workers, cache_dir=cache_dir).results
    )


def make_sad_variants(
    n_pixels: int = 64,
    approx_lsbs: int = 4,
    include_accurate: bool = True,
    eval_mode: str = "auto",
) -> Dict[str, SADAccelerator]:
    """The accelerator variants of Fig. 8: one per Table III cell.

    Args:
        n_pixels: Pixels per SAD block.
        approx_lsbs: Approximated LSBs in each variant's arithmetic.
        include_accurate: Also return the exact ``AccuSAD`` reference.
        eval_mode: Evaluation engine for every variant's arithmetic.
    """
    variants: Dict[str, SADAccelerator] = {}
    for name, cell in SAD_VARIANT_CELLS.items():
        if name == "AccuSAD":
            if include_accurate:
                variants[name] = SADAccelerator(
                    n_pixels, fa="AccuFA", eval_mode=eval_mode
                )
            continue
        variants[name] = SADAccelerator(
            n_pixels, fa=cell, approx_lsbs=approx_lsbs, eval_mode=eval_mode
        )
    return variants
