"""SAD (sum of absolute differences) accelerator (paper Sec. 6, Fig. 8/9).

The SAD accelerator is the paper's running case study: the motion
estimation of an HEVC-like encoder computes, for every candidate block,

    SAD(A, B) = sum_i |a_i - b_i|

through a datapath of subtractors, absolute-value stages, and an adder
tree.  Approximation enters through the full-adder cell used in the
subtractors/adders and the number of approximated LSBs -- giving the
``ApxSAD1 .. ApxSAD5`` variants of Fig. 8 (one per Table III cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..adders.characterize import adder_energy_per_op_fj
from ..adders.ripple import ApproximateRippleAdder

__all__ = [
    "SADAccelerator",
    "make_sad_variants",
    "characterize_sad_family",
    "SAD_VARIANT_CELLS",
]

#: Approximate cell behind each published SAD variant name.
SAD_VARIANT_CELLS: Dict[str, str] = {
    "AccuSAD": "AccuFA",
    "ApxSAD1": "ApxFA1",
    "ApxSAD2": "ApxFA2",
    "ApxSAD3": "ApxFA3",
    "ApxSAD4": "ApxFA4",
    "ApxSAD5": "ApxFA5",
}


class SADAccelerator:
    """Sum-of-absolute-differences datapath with approximate arithmetic.

    Args:
        n_pixels: Number of pixel pairs reduced per SAD (e.g. 64 for an
            8x8 block).
        pixel_bits: Pixel bit-width (8 for video).
        fa: Table III full-adder cell used in the approximated LSBs of
            every subtractor and tree adder.
        approx_lsbs: Number of approximated LSBs in each arithmetic
            stage (0 = fully accurate accelerator).

    Example:
        >>> acc = SADAccelerator(n_pixels=4)
        >>> int(acc.sad([1, 2, 3, 4], [4, 3, 2, 1]))
        8
    """

    def __init__(
        self,
        n_pixels: int = 64,
        pixel_bits: int = 8,
        fa: str = "AccuFA",
        approx_lsbs: int = 0,
    ) -> None:
        if n_pixels < 1:
            raise ValueError(f"n_pixels must be >= 1, got {n_pixels}")
        if approx_lsbs < 0:
            raise ValueError(f"approx_lsbs must be >= 0, got {approx_lsbs}")
        self.n_pixels = n_pixels
        self.pixel_bits = pixel_bits
        self.fa = fa
        self.approx_lsbs = approx_lsbs
        self._sub = ApproximateRippleAdder(
            pixel_bits, approx_fa=fa, num_approx_lsbs=min(approx_lsbs, pixel_bits)
        )
        # Tree adders: one width per reduction level.
        self._tree: List[ApproximateRippleAdder] = []
        width = pixel_bits
        remaining = n_pixels
        while remaining > 1:
            width += 1
            self._tree.append(
                ApproximateRippleAdder(
                    width, approx_fa=fa, num_approx_lsbs=min(approx_lsbs, width)
                )
            )
            remaining = (remaining + 1) // 2

    @property
    def name(self) -> str:
        for variant, cell in SAD_VARIANT_CELLS.items():
            if cell == self.fa:
                return f"{variant}(lsbs={self.approx_lsbs})"
        return f"SAD[{self.fa}x{self.approx_lsbs}]"

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def absolute_differences(self, a, b) -> np.ndarray:
        """Per-pixel ``|a - b|`` through the approximate subtractor."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        diff = self._sub.sub(a, b)
        return np.abs(diff)

    def sad(self, a, b) -> np.ndarray:
        """SAD over the last axis (must have length ``n_pixels``).

        Inputs may carry arbitrary leading batch dimensions; one SAD is
        produced per batch element.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape[-1] != self.n_pixels or b.shape[-1] != self.n_pixels:
            raise ValueError(
                f"last axis must have {self.n_pixels} pixels, got "
                f"{a.shape[-1]} and {b.shape[-1]}"
            )
        values = self.absolute_differences(a, b)
        level = 0
        while values.shape[-1] > 1:
            n = values.shape[-1]
            even = values[..., 0 : n - (n % 2) : 2]
            odd = values[..., 1 : n : 2]
            summed = self._tree[level].add(even, odd)
            if n % 2:
                summed = np.concatenate(
                    [summed, values[..., -1:]], axis=-1
                )
            values = summed
            level += 1
        return values[..., 0]

    # ------------------------------------------------------------------
    # physical roll-ups
    # ------------------------------------------------------------------
    @property
    def area_ge(self) -> float:
        """Subtractors (one per pixel) + the full adder tree."""
        total = self._sub.area_ge * self.n_pixels
        remaining = self.n_pixels
        for adder in self._tree:
            pairs = remaining // 2
            total += adder.area_ge * pairs
            remaining = (remaining + 1) // 2
        return total

    @property
    def energy_per_op_fj(self) -> float:
        """Switching energy of one full SAD evaluation."""
        total = adder_energy_per_op_fj(self._sub) * self.n_pixels
        remaining = self.n_pixels
        for adder in self._tree:
            pairs = remaining // 2
            total += adder_energy_per_op_fj(adder) * pairs
            remaining = (remaining + 1) // 2
        return total

    def power_nw(self, ops_per_second: float = 1e6) -> float:
        """Average power at a given SAD throughput."""
        # fJ/op * ops/s = 1e-15 W; report nW.
        return self.energy_per_op_fj * ops_per_second * 1e-15 * 1e9

    def __repr__(self) -> str:
        return (
            f"SADAccelerator(n_pixels={self.n_pixels}, fa={self.fa!r}, "
            f"approx_lsbs={self.approx_lsbs})"
        )


def characterize_sad_family(
    n_pixels: int = 64,
    lsb_counts: tuple = (2, 4, 6),
    n_samples: int = 3000,
    seed: int = 0,
) -> list:
    """Quality/energy records for every (cell, LSB-count) SAD variant.

    Quality is measured against the exact SAD on uniform random blocks;
    energy from the per-cell switching model.  The records feed the
    approximation manager and the CLI.

    Returns:
        List of dicts with ``name``, ``fa``, ``approx_lsbs``,
        ``mean_error_distance``, ``mrl`` (mean relative loss) and
        ``energy_fj``.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, (n_samples, n_pixels))
    b = rng.integers(0, 256, (n_samples, n_pixels))
    exact = SADAccelerator(n_pixels)
    truth = exact.sad(a, b)
    records = [
        {
            "name": "AccuSAD",
            "fa": "AccuFA",
            "approx_lsbs": 0,
            "mean_error_distance": 0.0,
            "mean_relative_error": 0.0,
            "energy_fj": round(exact.energy_per_op_fj, 0),
        }
    ]
    for variant, cell in SAD_VARIANT_CELLS.items():
        if variant == "AccuSAD":
            continue
        for lsbs in lsb_counts:
            accelerator = SADAccelerator(n_pixels, fa=cell, approx_lsbs=lsbs)
            result = accelerator.sad(a, b)
            med = float(np.abs(result - truth).mean())
            mre = float(
                np.mean(np.abs(result - truth) / np.maximum(truth, 1))
            )
            records.append(
                {
                    "name": f"{variant}/{lsbs}",
                    "fa": cell,
                    "approx_lsbs": lsbs,
                    "mean_error_distance": round(med, 2),
                    "mean_relative_error": round(mre, 5),
                    "energy_fj": round(accelerator.energy_per_op_fj, 0),
                }
            )
    return records


def make_sad_variants(
    n_pixels: int = 64, approx_lsbs: int = 4, include_accurate: bool = True
) -> Dict[str, SADAccelerator]:
    """The accelerator variants of Fig. 8: one per Table III cell.

    Args:
        n_pixels: Pixels per SAD block.
        approx_lsbs: Approximated LSBs in each variant's arithmetic.
        include_accurate: Also return the exact ``AccuSAD`` reference.
    """
    variants: Dict[str, SADAccelerator] = {}
    for name, cell in SAD_VARIANT_CELLS.items():
        if name == "AccuSAD":
            if include_accurate:
                variants[name] = SADAccelerator(n_pixels, fa="AccuFA")
            continue
        variants[name] = SADAccelerator(
            n_pixels, fa=cell, approx_lsbs=approx_lsbs
        )
    return variants
