"""Approximate 2-D DCT accelerator (lpACLib-style extension).

lpACLib -- the open-source library this paper releases -- ships a DCT
kernel as one of its approximate accelerators.  This module provides an
8x8 integer DCT-II accelerator in the same spirit: the transform is two
matrix passes of multiply-accumulate operations whose multiplies and
adds run through approximate units from this library.

The integer basis uses the AVC/HEVC-style scaled cosine matrix (6-bit
precision, factor 64); exact configuration round-trips within the
quantization error of the fixed-point basis.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

from ..adders.ripple import ApproximateRippleAdder
from ..multipliers.recursive import RecursiveMultiplier

__all__ = ["ApproximateDCT8x8", "integer_dct_matrix"]


@lru_cache(maxsize=None)
def integer_dct_matrix(size: int = 8, scale: int = 64) -> np.ndarray:
    """Scaled integer DCT-II basis matrix ``C`` with ``C C^T ~ scale^2 I``."""
    k = np.arange(size)
    basis = np.cos(np.pi * (2 * k[None, :] + 1) * k[:, None] / (2 * size))
    basis[0, :] *= 1.0 / np.sqrt(2.0)
    basis *= np.sqrt(2.0 / size) * scale
    return np.round(basis).astype(np.int64)


class ApproximateDCT8x8:
    """8x8 2-D integer DCT through approximate multipliers and adders.

    The MAC datapath multiplies 9-bit signed samples with 7-bit signed
    coefficients; sign handling is explicit (sign-magnitude) so the
    unsigned approximate multiplier models apply directly, as in the
    lpACLib kernels.

    Args:
        multiplier: Unsigned multiplier used for the magnitude product
            (``None`` -> exact).
        adder_fa: Full-adder cell for the accumulation adders' LSBs.
        adder_approx_lsbs: Approximated LSBs in each accumulation adder.

    Example:
        >>> dct = ApproximateDCT8x8()
        >>> block = np.arange(64).reshape(8, 8)
        >>> out = dct.forward(block)
        >>> out.shape
        (8, 8)
    """

    SIZE = 8
    SCALE = 64

    def __init__(
        self,
        multiplier: RecursiveMultiplier | None = None,
        adder_fa: str = "AccuFA",
        adder_approx_lsbs: int = 0,
    ) -> None:
        self.matrix = integer_dct_matrix(self.SIZE, self.SCALE)
        self.multiplier = multiplier
        # Accumulator: products reach ~ 9 + 7 = 16 bits; 8-term sums add
        # 3 bits of growth.
        self.accumulator = ApproximateRippleAdder(
            20, approx_fa=adder_fa, num_approx_lsbs=min(adder_approx_lsbs, 20)
        )
        self.adder_approx_lsbs = adder_approx_lsbs

    @property
    def name(self) -> str:
        mul_name = self.multiplier.name if self.multiplier else "exact"
        return f"DCT8x8[{mul_name},{self.accumulator.approx_fa.name}]"

    # ------------------------------------------------------------------
    # datapath helpers
    # ------------------------------------------------------------------
    def _signed_multiply(self, x: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Sign-magnitude product through the (unsigned) multiplier."""
        if self.multiplier is None:
            return x * c
        sign = np.sign(x) * np.sign(c)
        mag = self.multiplier.multiply(np.abs(x), np.abs(c))
        return sign * mag

    def _signed_accumulate(self, terms: np.ndarray) -> np.ndarray:
        """Reduce the last axis through the approximate accumulator.

        Signed values are handled in two's complement: operands are
        wrapped into the accumulator's unsigned range, added modularly,
        and the result is sign-extended -- exactly what the hardware
        adder does.
        """
        width = self.accumulator.width
        mask = (1 << width) - 1
        total = np.asarray(terms[..., 0], dtype=np.int64)
        for i in range(1, terms.shape[-1]):
            raw = self.accumulator.add_modular(
                total & mask, terms[..., i] & mask
            )
            total = raw - ((raw >> (width - 1)) << width)
        return total

    def _matmul(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """``left @ right`` through the approximate MAC datapath."""
        if self.multiplier is None and self.adder_approx_lsbs == 0:
            return left @ right
        rows, inner = left.shape
        cols = right.shape[1]
        products = self._signed_multiply(
            left[:, None, :].repeat(cols, axis=1),
            right.T[None, :, :].repeat(rows, axis=0),
        )
        return self._signed_accumulate(products)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def forward(self, block: np.ndarray) -> np.ndarray:
        """2-D DCT of an 8x8 block, rescaled back to sample range."""
        block = np.asarray(block, dtype=np.int64)
        if block.shape != (self.SIZE, self.SIZE):
            raise ValueError(f"expected an 8x8 block, got {block.shape}")
        stage1 = self._matmul(self.matrix, block)
        stage1 = np.rint(stage1 / self.SCALE).astype(np.int64)
        stage2 = self._matmul(stage1, self.matrix.T)
        return np.rint(stage2 / self.SCALE).astype(np.int64)

    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        """Inverse 2-D DCT (always exact -- decoder side is precise)."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        basis = self.matrix.astype(np.float64) / self.SCALE
        return np.rint(basis.T @ coeffs @ basis).astype(np.int64)

    def __repr__(self) -> str:
        return f"ApproximateDCT8x8({self.name})"
