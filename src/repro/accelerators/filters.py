"""Low-pass image-filter accelerator (paper Sec. 6.2, Fig. 10).

The paper's data-dependent-resilience study applies accurate and
approximate variants of a low-pass filter to a set of images and
compares SSIM.  This module implements a 3x3 binomial (Gaussian) filter

    kernel = 1/16 * [[1, 2, 1],
                     [2, 4, 2],
                     [1, 2, 1]]

as a shift-and-add datapath: the power-of-two weights are realized as
left shifts and the 8 partial terms are reduced with a (possibly
approximate) adder tree, followed by the ``>> 4`` normalization.  The
only arithmetic error source is therefore the approximate adder cell --
matching the paper's "same adder and kernel" setup where quality varies
with image content only.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..adders.ripple import ApproximateRippleAdder

__all__ = ["LowPassFilterAccelerator", "gaussian3x3_exact"]

#: 3x3 binomial kernel weights (row-major), summing to 16.
_KERNEL = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.int64)


def gaussian3x3_exact(image: np.ndarray) -> np.ndarray:
    """Exact reference 3x3 binomial filter with edge replication."""
    img = np.asarray(image, dtype=np.int64)
    padded = np.pad(img, 1, mode="edge")
    out = np.zeros_like(img)
    for dy in range(3):
        for dx in range(3):
            out += _KERNEL[dy, dx] * padded[
                dy : dy + img.shape[0], dx : dx + img.shape[1]
            ]
    return out >> 4


class LowPassFilterAccelerator:
    """3x3 binomial low-pass filter with an approximate adder tree.

    Args:
        fa: Table III full-adder cell for the approximated LSBs.
        approx_lsbs: Number of approximated LSBs in each tree adder.
        pixel_bits: Input pixel width (8 for grayscale images).
        eval_mode: Evaluation engine forwarded to every tree adder
            (``"auto"``/``"lut"``/``"loop"``, see
            :class:`~repro.adders.ripple.ApproximateRippleAdder`); all
            modes are bit-identical, which ``repro verify`` checks.

    Example:
        >>> acc = LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=0)
        >>> img = np.full((4, 4), 100)
        >>> bool(np.all(acc.apply(img) == 100))
        True
    """

    def __init__(
        self,
        fa: str = "AccuFA",
        approx_lsbs: int = 0,
        pixel_bits: int = 8,
        eval_mode: str = "auto",
    ) -> None:
        self.fa = fa
        self.approx_lsbs = approx_lsbs
        self.pixel_bits = pixel_bits
        self.eval_mode = eval_mode
        # Weighted terms reach pixel_bits + 2 (x4); the tree then grows
        # one bit per level for 3 levels (9 terms -> 5 -> 3 -> 2 -> 1).
        self._tree: List[ApproximateRippleAdder] = []
        width = pixel_bits + 2
        remaining = 9
        while remaining > 1:
            width += 1
            self._tree.append(
                ApproximateRippleAdder(
                    width,
                    approx_fa=fa,
                    num_approx_lsbs=min(approx_lsbs, width),
                    eval_mode=eval_mode,
                )
            )
            remaining = (remaining + 1) // 2

    @property
    def name(self) -> str:
        return f"LowPass[{self.fa}x{self.approx_lsbs}]"

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Filter a 2-D image; returns pixels clipped to the input range.

        Args:
            image: 2-D array of unsigned pixels (``pixel_bits`` wide).
        """
        img = np.asarray(image, dtype=np.int64)
        if img.ndim != 2:
            raise ValueError(f"expected a 2-D image, got shape {img.shape}")
        padded = np.pad(img, 1, mode="edge")
        terms = []
        for dy in range(3):
            for dx in range(3):
                window = padded[dy : dy + img.shape[0], dx : dx + img.shape[1]]
                shift = int(_KERNEL[dy, dx]).bit_length() - 1
                terms.append(window << shift)
        values = np.stack(terms, axis=-1)
        level = 0
        while values.shape[-1] > 1:
            n = values.shape[-1]
            even = values[..., 0 : n - (n % 2) : 2]
            odd = values[..., 1 : n : 2]
            summed = self._tree[level].add(even, odd)
            if n % 2:
                summed = np.concatenate([summed, values[..., -1:]], axis=-1)
            values = summed
            level += 1
        result = values[..., 0] >> 4
        return np.clip(result, 0, (1 << self.pixel_bits) - 1)

    @property
    def area_ge(self) -> float:
        """Adder-tree area (shifts are wiring)."""
        total = 0.0
        remaining = 9
        for adder in self._tree:
            total += adder.area_ge * (remaining // 2)
            remaining = (remaining + 1) // 2
        return total

    def __repr__(self) -> str:
        return (
            f"LowPassFilterAccelerator(fa={self.fa!r}, "
            f"approx_lsbs={self.approx_lsbs})"
        )
