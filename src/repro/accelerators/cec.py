"""Consolidated Error Correction (CEC) unit (paper Sec. 6.1, ref [37]).

State-of-the-art accuracy-configurable adders integrate an Error
Detection and Correction (EDC) stage into *every* adder, so a cascade of
k adders pays k EDC overheads.  The CEC observation (Mazahir et al.,
DAC 2016) is that the accumulated error at the *accelerator output* can
only take a small set of specific values (sums of per-adder error
offsets), so a single shared unit that adds one compensating offset at
the output recovers most of the quality at a fraction of the area.

:class:`ConsolidatedErrorCorrection` implements the statistical variant:
it calibrates the accelerator's output-error PMF on sample data, selects
the correction offset minimizing the expected remaining error magnitude
(over the small candidate set the PMF exposes), and applies it to
subsequent outputs.  :func:`edc_area_comparison` quantifies the area
argument against per-adder EDC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..errors.pmf import ErrorPMF

__all__ = [
    "ConsolidatedErrorCorrection",
    "EdcAreaComparison",
    "edc_area_comparison",
]

#: Area of one integrated EDC stage (detector + incrementer + mux),
#: in gate equivalents per corrected adder -- modelled after the GeAr
#: correction circuitry of Fig. 3.
EDC_AREA_PER_ADDER_GE = 9.0

#: Area of one shared CEC unit (offset register + output adder), GE.
CEC_UNIT_AREA_GE = 14.0


class ConsolidatedErrorCorrection:
    """Shared output-offset error correction for an accelerator.

    Args:
        accelerator_fn: Callable mapping input arrays to approximate
            outputs (e.g. ``sad_accelerator.sad``).
        reference_fn: Callable producing the exact outputs for the same
            inputs.

    Example:
        >>> import numpy as np
        >>> apx = lambda x: x + 3            # constant +3 error
        >>> exact = lambda x: x
        >>> cec = ConsolidatedErrorCorrection(apx, exact)
        >>> cec.calibrate(np.arange(100))
        -3
        >>> int(cec.correct(apx(np.asarray(10))))
        10
    """

    def __init__(
        self,
        accelerator_fn: Callable[..., np.ndarray],
        reference_fn: Callable[..., np.ndarray],
    ) -> None:
        self.accelerator_fn = accelerator_fn
        self.reference_fn = reference_fn
        self.offset: int | None = None
        self.error_pmf: ErrorPMF | None = None

    def calibrate(self, *calibration_inputs) -> int:
        """Learn the correction offset from calibration data.

        Runs both the approximate and exact accelerators, builds the
        output-error PMF, and picks the offset ``-e`` (over observed
        error values and their mean) minimizing the expected remaining
        absolute error.

        Returns:
            The selected offset (added to raw outputs by :meth:`correct`).
        """
        approx = np.asarray(self.accelerator_fn(*calibration_inputs))
        exact = np.asarray(self.reference_fn(*calibration_inputs))
        self.error_pmf = ErrorPMF.from_pairs(approx, exact)
        candidates = {-v for v in self.error_pmf.support}
        candidates.add(-int(round(self.error_pmf.mean)))
        best_offset = 0
        best_cost = float("inf")
        for offset in sorted(candidates):
            cost = self.error_pmf.shift(offset).mean_abs
            if cost < best_cost:
                best_cost = cost
                best_offset = offset
        self.offset = int(best_offset)
        return self.offset

    def correct(self, raw_output: np.ndarray) -> np.ndarray:
        """Apply the calibrated offset to raw accelerator outputs."""
        if self.offset is None:
            raise RuntimeError("call calibrate() before correct()")
        return np.asarray(raw_output, dtype=np.int64) + self.offset

    def __call__(self, *inputs) -> np.ndarray:
        """Run the accelerator and correct its output."""
        return self.correct(self.accelerator_fn(*inputs))

    def residual_error_pmf(self) -> ErrorPMF:
        """Predicted error PMF after correction."""
        if self.error_pmf is None or self.offset is None:
            raise RuntimeError("call calibrate() first")
        return self.error_pmf.shift(self.offset)


@dataclass(frozen=True)
class EdcAreaComparison:
    """Area comparison of integrated EDC vs. one consolidated unit."""

    n_adders: int
    integrated_edc_ge: float
    consolidated_ge: float

    @property
    def saving_ge(self) -> float:
        return self.integrated_edc_ge - self.consolidated_ge

    @property
    def saving_percent(self) -> float:
        if self.integrated_edc_ge == 0:
            return 0.0
        return 100.0 * self.saving_ge / self.integrated_edc_ge


def edc_area_comparison(n_adders: int) -> EdcAreaComparison:
    """Compare per-adder EDC area against one shared CEC unit.

    Args:
        n_adders: Number of approximate adders in the accelerator
            cascade (each would otherwise embed its own EDC).
    """
    if n_adders < 1:
        raise ValueError(f"n_adders must be >= 1, got {n_adders}")
    return EdcAreaComparison(
        n_adders=n_adders,
        integrated_edc_ge=EDC_AREA_PER_ADDER_GE * n_adders,
        consolidated_ge=CEC_UNIT_AREA_GE,
    )
