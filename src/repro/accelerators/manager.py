"""Approximation management unit (paper Sec. 6).

In a multi-accelerator approximate computing architecture, "an
appropriate set of accelerators and their appropriate approximation
modes are selected by the approximation management unit, such that the
performance and quality constraints of those applications are met and
the overall power is minimized".  This module implements that unit:

* accelerators advertise discrete *modes*, each with a quality score and
  a power cost (from characterization);
* applications request an accelerator kind and a minimum quality;
* :meth:`ApproximationManager.select_modes` assigns one mode per
  application, minimizing total power subject to every quality
  constraint (exact search over the mode product space when small,
  per-application greedy otherwise -- the per-application choice is
  actually independent, so greedy is optimal here and the exact path
  exists for validation);
* :meth:`ApproximationManager.adapt` implements run-time approximation
  control: measured quality below target tightens the mode, comfortable
  headroom relaxes it (with hysteresis), the data-driven control loop
  motivated in Sec. 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AcceleratorMode",
    "AcceleratorProfile",
    "ApplicationRequest",
    "ModeAssignment",
    "ApproximationManager",
]


@dataclass(frozen=True)
class AcceleratorMode:
    """One operating point of an accelerator.

    Attributes:
        name: Mode label (e.g. ``"ApxSAD2/4"``).
        quality: Quality score in [0, 1] (1 = exact).
        power_nw: Average power in this mode.
    """

    name: str
    quality: float
    power_nw: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")
        if self.power_nw < 0:
            raise ValueError(f"power must be >= 0, got {self.power_nw}")


@dataclass(frozen=True)
class AcceleratorProfile:
    """An accelerator kind with its available modes."""

    kind: str
    modes: Tuple[AcceleratorMode, ...]

    def __post_init__(self) -> None:
        if not self.modes:
            raise ValueError(f"accelerator {self.kind!r} needs >= 1 mode")

    def feasible_modes(self, min_quality: float) -> List[AcceleratorMode]:
        return [m for m in self.modes if m.quality >= min_quality]

    def cheapest_mode(self, min_quality: float) -> AcceleratorMode:
        """Lowest-power mode meeting the quality bound."""
        feasible = self.feasible_modes(min_quality)
        if not feasible:
            raise ValueError(
                f"accelerator {self.kind!r} has no mode with quality >= "
                f"{min_quality}"
            )
        return min(feasible, key=lambda m: (m.power_nw, -m.quality))


@dataclass(frozen=True)
class ApplicationRequest:
    """A running application's accelerator demand."""

    app: str
    kind: str
    min_quality: float


@dataclass(frozen=True)
class ModeAssignment:
    """Result of a management decision."""

    assignments: Dict[str, AcceleratorMode]
    total_power_nw: float


class ApproximationManager:
    """Selects and adapts approximation modes for running applications.

    Example:
        >>> sad = AcceleratorProfile("sad", (
        ...     AcceleratorMode("exact", 1.0, 100.0),
        ...     AcceleratorMode("apx4", 0.95, 60.0),
        ...     AcceleratorMode("apx6", 0.80, 40.0),
        ... ))
        >>> mgr = ApproximationManager([sad])
        >>> result = mgr.select_modes(
        ...     [ApplicationRequest("encoder", "sad", 0.9)])
        >>> result.assignments["encoder"].name
        'apx4'
    """

    #: Quality slack required before relaxing to a cheaper mode.
    hysteresis = 0.02

    def __init__(self, profiles: List[AcceleratorProfile]) -> None:
        self.profiles: Dict[str, AcceleratorProfile] = {}
        for profile in profiles:
            if profile.kind in self.profiles:
                raise ValueError(f"duplicate accelerator kind {profile.kind!r}")
            self.profiles[profile.kind] = profile
        self._current: Dict[str, AcceleratorMode] = {}

    def select_modes(
        self, requests: List[ApplicationRequest]
    ) -> ModeAssignment:
        """Minimum-power mode per application meeting its quality bound."""
        assignments: Dict[str, AcceleratorMode] = {}
        total = 0.0
        for request in requests:
            if request.kind not in self.profiles:
                raise KeyError(f"unknown accelerator kind {request.kind!r}")
            mode = self.profiles[request.kind].cheapest_mode(request.min_quality)
            assignments[request.app] = mode
            total += mode.power_nw
        self._current = dict(assignments)
        return ModeAssignment(assignments=assignments, total_power_nw=total)

    def select_modes_exhaustive(
        self, requests: List[ApplicationRequest]
    ) -> ModeAssignment:
        """Exact search over the full mode product space (validation).

        Per-application choices are independent, so this must agree with
        :meth:`select_modes`; it exists to validate that optimality and
        to support future coupled constraints (e.g. shared power budget).
        """
        from itertools import product as iproduct

        options: List[List[AcceleratorMode]] = []
        for request in requests:
            feasible = self.profiles[request.kind].feasible_modes(
                request.min_quality
            )
            if not feasible:
                raise ValueError(
                    f"no feasible mode for {request.app!r}"
                )
            options.append(feasible)
        best: Optional[Tuple[float, Tuple[AcceleratorMode, ...]]] = None
        for combo in iproduct(*options):
            power = sum(m.power_nw for m in combo)
            if best is None or power < best[0]:
                best = (power, combo)
        assert best is not None
        assignments = {
            req.app: mode for req, mode in zip(requests, best[1])
        }
        return ModeAssignment(assignments=assignments, total_power_nw=best[0])

    def adapt(
        self, app: str, request: ApplicationRequest, measured_quality: float
    ) -> AcceleratorMode:
        """Run-time adaptation from measured output quality.

        If the measured quality violates the application's bound, switch
        to the next-higher-quality mode; if it exceeds the bound by more
        than the hysteresis margin, relax to the cheapest feasible mode.

        Args:
            app: Application name (must have a current assignment).
            request: The application's standing request.
            measured_quality: Observed quality of recent outputs.

        Returns:
            The (possibly updated) active mode.
        """
        if app not in self._current:
            raise KeyError(f"no current assignment for {app!r}")
        profile = self.profiles[request.kind]
        current = self._current[app]
        ordered = sorted(profile.modes, key=lambda m: m.quality)
        if measured_quality < request.min_quality:
            better = [m for m in ordered if m.quality > current.quality]
            if better:
                current = better[0]
        elif measured_quality > request.min_quality + self.hysteresis:
            current = profile.cheapest_mode(request.min_quality)
        self._current[app] = current
        return current

    @property
    def current_assignments(self) -> Dict[str, AcceleratorMode]:
        return dict(self._current)
