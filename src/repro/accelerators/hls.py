"""Approximate high-level synthesis (paper Sec. 6).

The paper notes that accelerators "can either be generated manually (as
done in this paper) or using specialized high-level synthesis (HLS)
techniques/tools for approximate computing, which is an interesting
research problem".  This module provides a baseline solution: given a
dataflow accelerator template and a *worst-case output-error budget*, it
assigns an approximate adder to every add/sub node such that the
guaranteed output error bound (from :mod:`repro.errors.interval`) meets
the budget at minimum estimated area.

Algorithm: marginal-benefit greedy.  Every node starts at the cheapest
candidate; while the propagated output bound exceeds the budget, the
node upgrade with the best bound-reduction per unit area is applied.
Since the most accurate candidate is exact, the loop always terminates
with a feasible (possibly all-exact) assignment.

Nodes whose operand *value ranges* may be negative are pinned to exact
units (the ripple-adder behavioural models take unsigned operands); the
value ranges themselves are computed by interval analysis from declared
input ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..adders.ripple import ApproximateRippleAdder
from ..errors.interval import ErrorInterval, adder_error_interval
from .dataflow import DataflowAccelerator

__all__ = [
    "AdderCandidate",
    "default_adder_candidates",
    "SynthesisResult",
    "ApproximateSynthesizer",
]


@dataclass(frozen=True)
class _ValueRange:
    lo: int
    hi: int

    def __add__(self, other: "_ValueRange") -> "_ValueRange":
        return _ValueRange(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "_ValueRange") -> "_ValueRange":
        return _ValueRange(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "_ValueRange":
        return _ValueRange(-self.hi, -self.lo)

    def mul(self, other: "_ValueRange") -> "_ValueRange":
        corners = [
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ]
        return _ValueRange(min(corners), max(corners))

    def abs(self) -> "_ValueRange":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return _ValueRange(-self.hi, -self.lo)
        return _ValueRange(0, max(-self.lo, self.hi))

    def shl(self, k: int) -> "_ValueRange":
        return _ValueRange(self.lo << k, self.hi << k)

    def shr(self, k: int) -> "_ValueRange":
        return _ValueRange(self.lo >> k, self.hi >> k)

    def clip(self, lo: int, hi: int) -> "_ValueRange":
        return _ValueRange(
            min(max(self.lo, lo), hi), min(max(self.hi, lo), hi)
        )

    @property
    def non_negative(self) -> bool:
        return self.lo >= 0

    def required_bits(self) -> int:
        """Unsigned bits needed to hold any value in the range."""
        return max(int(self.hi).bit_length(), int(abs(self.lo)).bit_length(), 1)


@dataclass(frozen=True)
class AdderCandidate:
    """One rung of the accuracy/cost ladder available to the synthesizer.

    Attributes:
        name: Label (e.g. ``"ApxFA5x4"`` or ``"exact"``).
        approx_fa: Table III cell for the approximated LSBs
            (ignored when ``approx_lsbs`` is 0).
        approx_lsbs: Number of approximated LSBs (0 = exact).
    """

    name: str
    approx_fa: str
    approx_lsbs: int

    def build(self, width: int) -> ApproximateRippleAdder:
        return ApproximateRippleAdder(
            width,
            approx_fa=self.approx_fa,
            num_approx_lsbs=min(self.approx_lsbs, width),
        )

    def area_ge(self, width: int) -> float:
        return self.build(width).area_ge

    def error_interval(self, width: int) -> ErrorInterval:
        return adder_error_interval(self.build(width))


def default_adder_candidates() -> List[AdderCandidate]:
    """Cheapest-first accuracy ladder used when none is supplied."""
    return [
        AdderCandidate("ApxFA5x6", "ApxFA5", 6),
        AdderCandidate("ApxFA5x4", "ApxFA5", 4),
        AdderCandidate("ApxFA1x4", "ApxFA1", 4),
        AdderCandidate("ApxFA1x2", "ApxFA1", 2),
        AdderCandidate("exact", "AccuFA", 0),
    ]


@dataclass
class SynthesisResult:
    """Outcome of an approximate-HLS run.

    Attributes:
        accelerator: The template with units assigned (ready to run).
        assignment: node index -> candidate name.
        error_bound: Guaranteed worst-case |output error|.
        area_ge: Total assigned-unit area.
        budget: The requested bound.
    """

    accelerator: DataflowAccelerator
    assignment: Dict[int, str]
    error_bound: int
    area_ge: float
    budget: int


class ApproximateSynthesizer:
    """Assigns approximate adders to a dataflow template under a budget.

    Example:
        >>> acc = DataflowAccelerator("sum4")
        >>> xs = [acc.add_input(f"x{i}") for i in range(4)]
        >>> s1 = acc.add_node("add", [xs[0], xs[1]])
        >>> s2 = acc.add_node("add", [xs[2], xs[3]])
        >>> acc.set_output(acc.add_node("add", [s1, s2]))
        >>> synth = ApproximateSynthesizer()
        >>> result = synth.synthesize(acc, {f"x{i}": (0, 255) for i in range(4)},
        ...                           error_budget=0)
        >>> result.error_bound
        0
    """

    def __init__(
        self, candidates: Sequence[AdderCandidate] | None = None
    ) -> None:
        self.candidates = list(
            default_adder_candidates() if candidates is None else candidates
        )
        if not self.candidates:
            raise ValueError("need at least one candidate")
        exact = [c for c in self.candidates if c.approx_lsbs == 0]
        if not exact:
            raise ValueError(
                "the candidate ladder must include an exact adder "
                "(approx_lsbs=0) so every budget is feasible"
            )

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def _value_ranges(
        self,
        accelerator: DataflowAccelerator,
        input_ranges: Dict[str, Tuple[int, int]],
    ) -> List[_ValueRange]:
        ranges: List[_ValueRange] = []
        for node in accelerator.nodes:
            if node.op == "input":
                if node.name not in input_ranges:
                    raise ValueError(f"missing range for input {node.name!r}")
                lo, hi = input_ranges[node.name]
                ranges.append(_ValueRange(int(lo), int(hi)))
            elif node.op == "const":
                ranges.append(_ValueRange(int(node.param), int(node.param)))
            elif node.op == "add":
                ranges.append(ranges[node.args[0]] + ranges[node.args[1]])
            elif node.op == "sub":
                ranges.append(ranges[node.args[0]] - ranges[node.args[1]])
            elif node.op == "mul":
                ranges.append(ranges[node.args[0]].mul(ranges[node.args[1]]))
            elif node.op == "abs":
                ranges.append(ranges[node.args[0]].abs())
            elif node.op == "neg":
                ranges.append(-ranges[node.args[0]])
            elif node.op == "shl":
                ranges.append(ranges[node.args[0]].shl(node.param))
            elif node.op == "shr":
                ranges.append(ranges[node.args[0]].shr(node.param))
            elif node.op == "clip":
                ranges.append(ranges[node.args[0]].clip(*node.param))
            else:  # pragma: no cover
                raise AssertionError(node.op)
        return ranges

    def _propagate_errors(
        self,
        accelerator: DataflowAccelerator,
        unit_intervals: Dict[int, ErrorInterval],
    ) -> ErrorInterval:
        errors: List[ErrorInterval] = []
        for node in accelerator.nodes:
            if node.op in ("input", "const"):
                errors.append(ErrorInterval.exact())
            elif node.op == "add":
                combined = errors[node.args[0]] + errors[node.args[1]]
                errors.append(
                    combined + unit_intervals.get(node.index,
                                                  ErrorInterval.exact())
                )
            elif node.op == "sub":
                combined = errors[node.args[0]] - errors[node.args[1]]
                errors.append(
                    combined + unit_intervals.get(node.index,
                                                  ErrorInterval.exact())
                )
            elif node.op == "mul":
                # Exact multiplier over erroneous operands needs value
                # ranges; handled conservatively by the caller pinning
                # mul operands exact.  Here operand errors must be zero.
                ea, eb = errors[node.args[0]], errors[node.args[1]]
                if (ea.lo, ea.hi, eb.lo, eb.hi) != (0, 0, 0, 0):
                    raise ValueError(
                        "mul over approximate operands is not supported; "
                        "pin upstream nodes exact"
                    )
                errors.append(ErrorInterval.exact())
            elif node.op == "abs":
                errors.append(errors[node.args[0]].through_abs())
            elif node.op == "neg":
                errors.append(-errors[node.args[0]])
            elif node.op == "shl":
                errors.append(errors[node.args[0]].scale(1 << node.param))
            elif node.op == "shr":
                src = errors[node.args[0]]
                errors.append(
                    ErrorInterval(
                        src.lo >> node.param,
                        -((-src.hi) >> node.param),
                    )
                )
            elif node.op == "clip":
                src = errors[node.args[0]]
                errors.append(ErrorInterval(min(src.lo, 0), max(src.hi, 0)))
            else:  # pragma: no cover
                raise AssertionError(node.op)
        return errors[accelerator.output]

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------
    def synthesize(
        self,
        accelerator: DataflowAccelerator,
        input_ranges: Dict[str, Tuple[int, int]],
        error_budget: int,
    ) -> SynthesisResult:
        """Assign units so the worst-case output error meets the budget.

        Args:
            accelerator: Template graph (its add/sub nodes get units
                assigned in place).
            input_ranges: Declared ``(lo, hi)`` range per input.
            error_budget: Maximum tolerated ``|output error|`` (>= 0).

        Returns:
            A :class:`SynthesisResult`; ``result.accelerator`` is the
            same object, now executable with the chosen units.
        """
        if error_budget < 0:
            raise ValueError(f"error_budget must be >= 0, got {error_budget}")
        if accelerator.output is None:
            raise ValueError("template needs an output; call set_output")
        ranges = self._value_ranges(accelerator, input_ranges)
        exact_level = max(
            i for i, c in enumerate(self.candidates) if c.approx_lsbs == 0
        )

        assignable: List[int] = []
        widths: Dict[int, int] = {}
        for node in accelerator.nodes:
            if node.op not in ("add", "sub"):
                continue
            operand_ranges = [ranges[a] for a in node.args]
            widths[node.index] = max(
                r.required_bits() for r in operand_ranges + [ranges[node.index]]
            )
            if all(r.non_negative for r in operand_ranges) or node.op == "sub":
                assignable.append(node.index)

        # Nodes with possibly-negative add operands stay exact (None
        # unit = exact default); sub handles signs via two's complement.
        levels: Dict[int, int] = {idx: 0 for idx in assignable}

        def bound_for(current: Dict[int, int]) -> int:
            intervals = {
                idx: self.candidates[level].error_interval(widths[idx])
                for idx, level in current.items()
            }
            return self._propagate_errors(accelerator, intervals).max_abs

        bound = bound_for(levels)
        while bound > error_budget:
            best_choice = None
            best_score = None
            for idx in assignable:
                if levels[idx] >= exact_level:
                    continue
                trial = dict(levels)
                trial[idx] = levels[idx] + 1
                new_bound = bound_for(trial)
                area_delta = self.candidates[trial[idx]].area_ge(
                    widths[idx]
                ) - self.candidates[levels[idx]].area_ge(widths[idx])
                score = (
                    (bound - new_bound) / max(area_delta, 1e-9),
                    -(idx),
                )
                if best_score is None or score > best_score:
                    best_score = score
                    best_choice = (idx, new_bound)
            if best_choice is None:
                break  # everything exact; bound is as low as it gets
            levels[best_choice[0]] += 1
            bound = bound_for(levels)

        assignment: Dict[int, str] = {}
        area = 0.0
        for idx, level in levels.items():
            candidate = self.candidates[level]
            unit = candidate.build(widths[idx])
            accelerator.nodes[idx].unit = unit
            assignment[idx] = candidate.name
            area += unit.area_ge
        return SynthesisResult(
            accelerator=accelerator,
            assignment=assignment,
            error_bound=bound,
            area_ge=area,
            budget=error_budget,
        )
