"""Multi-accelerator approximate computing architecture (paper Sec. 6).

The paper's architectural vision is "a wide-range of diverse approximate
accelerators in a multi-accelerator approximate computing architecture"
where, "for a set of concurrently executing applications, an appropriate
set of accelerators and their appropriate approximation modes are
selected by the approximation management unit, such that the performance
and quality constraints of those applications are met and the overall
power is minimized".

:class:`MultiAcceleratorArchitecture` simulates exactly that control
loop over discrete epochs:

1. applications submit work (operations/epoch) with a minimum quality;
2. the :class:`~repro.accelerators.manager.ApproximationManager` picks
   each application's mode;
3. the epoch executes; per-application *measured* quality is fed back
   (callers supply a quality monitor -- e.g. SSIM of filter outputs or
   bit-rate of an encoder);
4. the manager adapts modes (tighten on violation, relax with headroom);
5. energy, quality and mode histories accumulate for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .manager import (
    AcceleratorMode,
    AcceleratorProfile,
    ApplicationRequest,
    ApproximationManager,
)

__all__ = ["RunningApplication", "EpochRecord", "MultiAcceleratorArchitecture"]

#: Measures the quality actually delivered to the app in one epoch,
#: given the active mode.  Signature: (mode, epoch_index) -> quality.
QualityMonitor = Callable[[AcceleratorMode, int], float]


@dataclass
class RunningApplication:
    """One application executing on the architecture.

    Attributes:
        name: Application identifier.
        kind: Accelerator kind it needs (must match a profile).
        min_quality: Quality constraint in [0, 1].
        ops_per_epoch: Accelerator invocations per epoch (drives energy).
        quality_monitor: Observed-quality callback; defaults to the
            mode's characterized quality (perfect prediction).
    """

    name: str
    kind: str
    min_quality: float
    ops_per_epoch: int = 1000
    quality_monitor: Optional[QualityMonitor] = None

    def request(self) -> ApplicationRequest:
        return ApplicationRequest(self.name, self.kind, self.min_quality)


@dataclass(frozen=True)
class EpochRecord:
    """Telemetry of one simulated epoch."""

    epoch: int
    modes: Dict[str, str]
    measured_quality: Dict[str, float]
    violations: Tuple[str, ...]
    energy: float


class MultiAcceleratorArchitecture:
    """A bank of approximate accelerators under management.

    Example:
        >>> profile = AcceleratorProfile("sad", (
        ...     AcceleratorMode("exact", 1.0, 100.0),
        ...     AcceleratorMode("apx", 0.9, 40.0),
        ... ))
        >>> arch = MultiAcceleratorArchitecture([profile])
        >>> app = RunningApplication("enc", "sad", min_quality=0.85)
        >>> records = arch.run([app], n_epochs=3)
        >>> records[-1].modes["enc"]
        'apx'
    """

    def __init__(self, profiles: List[AcceleratorProfile]) -> None:
        self.manager = ApproximationManager(profiles)
        self.history: List[EpochRecord] = []

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(
        self, applications: List[RunningApplication], n_epochs: int = 10
    ) -> List[EpochRecord]:
        """Simulate the managed architecture for ``n_epochs``.

        Returns:
            The per-epoch telemetry (also appended to ``self.history``).
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        names = [app.name for app in applications]
        if len(set(names)) != len(names):
            raise ValueError("application names must be unique")
        requests = [app.request() for app in applications]
        self.manager.select_modes(requests)
        records: List[EpochRecord] = []
        for epoch in range(n_epochs):
            assignments = self.manager.current_assignments
            measured: Dict[str, float] = {}
            violations: List[str] = []
            energy = 0.0
            for app in applications:
                mode = assignments[app.name]
                if app.quality_monitor is not None:
                    quality = app.quality_monitor(mode, epoch)
                else:
                    quality = mode.quality
                measured[app.name] = quality
                if quality < app.min_quality:
                    violations.append(app.name)
                energy += mode.power_nw * app.ops_per_epoch
            record = EpochRecord(
                epoch=epoch,
                modes={name: assignments[name].name for name in names},
                measured_quality=measured,
                violations=tuple(violations),
                energy=energy,
            )
            records.append(record)
            # Feedback: adapt each application's mode for the next epoch.
            for app in applications:
                self.manager.adapt(app.name, app.request(), measured[app.name])
        self.history.extend(records)
        return records

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        """Accumulated energy across all simulated epochs."""
        return sum(record.energy for record in self.history)

    def violation_epochs(self, app: str) -> List[int]:
        """Epoch indices where ``app`` missed its quality constraint."""
        return [
            record.epoch for record in self.history if app in record.violations
        ]

    def exact_baseline_energy(
        self, applications: List[RunningApplication], n_epochs: int
    ) -> float:
        """Energy if every application always ran its highest-quality mode."""
        total = 0.0
        for app in applications:
            profile = self.manager.profiles[app.kind]
            best = max(profile.modes, key=lambda m: (m.quality, -m.power_nw))
            total += best.power_nw * app.ops_per_epoch * n_epochs
        return total
