"""Approximate neural-network inference (the paper's RMS workload class).

The paper's introduction leads with "deep learning networks ...
recognition and machine learning" as the application class whose
inherent resilience approximate computing exploits, and Table I lists
machine-learning kernels at both the software and architectural layers.
This module provides the matching application substrate:

* :func:`make_classification_data` -- deterministic synthetic
  classification datasets (Gaussian clusters);
* :class:`MLPClassifier` -- a small NumPy MLP trained exactly (plain
  gradient descent, no external framework);
* :class:`QuantizedMLP` -- the inference engine: int8 weights / uint8
  activations, whose multiply-accumulate operations run through
  *pluggable approximate units* (a signed Booth multiplier and an
  approximate accumulator), so classification accuracy can be traded
  against arithmetic energy exactly as the paper's resilience argument
  predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..adders.ripple import ApproximateRippleAdder
from ..multipliers.booth import BoothMultiplier

__all__ = ["make_classification_data", "MLPClassifier", "QuantizedMLP"]


def make_classification_data(
    n_samples: int = 600,
    n_classes: int = 3,
    n_features: int = 4,
    seed: int = 0,
    spread: float = 1.3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Gaussian-cluster classification data.

    Returns:
        ``(X, y)``: features scaled to [0, 1] and integer class labels.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_classes, n_features))
    per_class = n_samples // n_classes
    xs, ys = [], []
    for label, center in enumerate(centers):
        xs.append(rng.normal(center, spread, size=(per_class, n_features)))
        ys.append(np.full(per_class, label))
    features = np.concatenate(xs)
    labels = np.concatenate(ys)
    order = rng.permutation(len(labels))
    features, labels = features[order], labels[order]
    lo, hi = features.min(axis=0), features.max(axis=0)
    features = (features - lo) / np.maximum(hi - lo, 1e-9)
    return features, labels.astype(np.int64)


class MLPClassifier:
    """One-hidden-layer MLP trained with plain NumPy gradient descent.

    Example:
        >>> X, y = make_classification_data(n_samples=300, seed=1)
        >>> mlp = MLPClassifier.train(X, y, hidden=8, epochs=200, seed=1)
        >>> mlp.accuracy(X, y) > 0.8
        True
    """

    def __init__(self, w1: np.ndarray, b1: np.ndarray,
                 w2: np.ndarray, b2: np.ndarray) -> None:
        self.w1, self.b1, self.w2, self.b2 = w1, b1, w2, b2

    @classmethod
    def train(
        cls,
        features: np.ndarray,
        labels: np.ndarray,
        hidden: int = 8,
        epochs: int = 300,
        learning_rate: float = 0.5,
        seed: int = 0,
    ) -> "MLPClassifier":
        """Train with full-batch gradient descent (softmax cross-entropy)."""
        rng = np.random.default_rng(seed)
        n_features = features.shape[1]
        n_classes = int(labels.max()) + 1
        w1 = rng.normal(0, 0.5, size=(n_features, hidden))
        b1 = np.zeros(hidden)
        w2 = rng.normal(0, 0.5, size=(hidden, n_classes))
        b2 = np.zeros(n_classes)
        onehot = np.eye(n_classes)[labels]
        for _ in range(epochs):
            hidden_act = np.maximum(features @ w1 + b1, 0.0)
            logits = hidden_act @ w2 + b2
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            grad_logits = (probs - onehot) / len(labels)
            grad_w2 = hidden_act.T @ grad_logits
            grad_b2 = grad_logits.sum(axis=0)
            grad_hidden = grad_logits @ w2.T * (hidden_act > 0)
            grad_w1 = features.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            w1 -= learning_rate * grad_w1
            b1 -= learning_rate * grad_b1
            w2 -= learning_rate * grad_w2
            b2 -= learning_rate * grad_b2
        return cls(w1, b1, w2, b2)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Float-precision class predictions."""
        hidden_act = np.maximum(features @ self.w1 + self.b1, 0.0)
        return np.argmax(hidden_act @ self.w2 + self.b2, axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Float-precision classification accuracy."""
        return float(np.mean(self.predict(features) == labels))

    def quantize(
        self, calibration_features: np.ndarray, activation_bits: int = 8
    ) -> "QuantizedMLP":
        """Fixed-point version of this network (int8 weights).

        Args:
            calibration_features: Representative inputs used to fix the
                hidden-activation scale (post-training calibration).
            activation_bits: Activation width (8 -> uint8).
        """
        return QuantizedMLP(
            self, calibration_features, activation_bits=activation_bits
        )


class QuantizedMLP:
    """Fixed-point MLP inference through approximate arithmetic units.

    Weights quantize to int8 symmetric; activations to uint8.  Each MAC
    computes ``w * x`` through the (signed) ``multiplier`` and
    accumulates through the ``accumulator`` adder; ``None`` selects
    exact arithmetic, so the quantization loss and the approximation
    loss are separable.
    """

    WEIGHT_BITS = 8

    def __init__(
        self,
        mlp: MLPClassifier,
        calibration_features: np.ndarray,
        activation_bits: int = 8,
    ) -> None:
        self.activation_bits = activation_bits
        self.act_scale = (1 << activation_bits) - 1

        def quant_weights(w: np.ndarray) -> Tuple[np.ndarray, float]:
            scale = float(np.abs(w).max()) or 1.0
            q = np.rint(w / scale * 127).astype(np.int64)
            return q, scale

        self.w1, self.w1_scale = quant_weights(mlp.w1)
        self.w2, self.w2_scale = quant_weights(mlp.w2)
        # Calibrate the hidden-activation range on representative data so
        # the layer-2 bias scale is static (content-independent).
        calibration = np.asarray(calibration_features, dtype=np.float64)
        hidden_float = np.maximum(calibration @ mlp.w1 + mlp.b1, 0.0)
        self.hidden_max = float(hidden_float.max()) or 1.0
        # Layer-1 accumulator scale relative to float pre-activations.
        gamma1 = self.act_scale * 127.0 / self.w1_scale
        self.b1 = np.rint(mlp.b1 * gamma1).astype(np.int64)
        # Hidden rescale divisor: fixed -> uint8 covering [0, hidden_max].
        self.hidden_divisor = max(
            int(round(self.hidden_max * gamma1 / self.act_scale)), 1
        )
        # Layer-2 bias at the (rescaled-hidden x int8-weight) scale.
        gamma2 = (self.act_scale / self.hidden_max) * 127.0 / self.w2_scale
        self.b2 = np.rint(mlp.b2 * gamma2).astype(np.int64)

    # ------------------------------------------------------------------
    # fixed-point datapath
    # ------------------------------------------------------------------
    def _mac_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        multiplier: Optional[BoothMultiplier],
        accumulator: Optional[ApproximateRippleAdder],
    ) -> np.ndarray:
        """``activations @ weights + bias`` through approximate units."""
        n_samples, n_in = activations.shape
        n_out = weights.shape[1]
        if multiplier is None and accumulator is None:
            return activations @ weights + bias
        # Products: broadcast every (sample, in, out) triple.
        acts = activations[:, :, None]
        wts = weights[None, :, :]
        if multiplier is None:
            products = acts * wts
        else:
            products = multiplier.multiply(
                np.broadcast_to(wts, (n_samples, n_in, n_out)),
                np.broadcast_to(acts, (n_samples, n_in, n_out)),
            )
        if accumulator is None:
            return products.sum(axis=1) + bias
        width = accumulator.width
        mask = (1 << width) - 1
        total = np.broadcast_to(bias, (n_samples, n_out)).astype(np.int64)
        for k in range(n_in):
            raw = accumulator.add_modular(
                total & mask, products[:, k, :] & mask
            )
            total = raw - ((raw >> (width - 1)) << width)
        return total

    def predict(
        self,
        features: np.ndarray,
        multiplier: Optional[BoothMultiplier] = None,
        accumulator: Optional[ApproximateRippleAdder] = None,
    ) -> np.ndarray:
        """Class predictions through the fixed-point datapath.

        Args:
            features: Float features in [0, 1].
            multiplier: Signed multiplier for every MAC (``None`` exact).
            accumulator: Accumulation adder (``None`` exact); must be
                wide enough for the layer sums (>= 24 bits recommended).
        """
        acts = np.rint(
            np.clip(features, 0.0, 1.0) * self.act_scale
        ).astype(np.int64)
        hidden = self._mac_layer(acts, self.w1, self.b1, multiplier, accumulator)
        hidden = np.maximum(hidden, 0)
        # Static calibrated rescale to uint8 (saturating).
        hidden = np.clip(hidden // self.hidden_divisor, 0, self.act_scale)
        logits = self._mac_layer(hidden, self.w2, self.b2, multiplier, accumulator)
        return np.argmax(logits, axis=1)

    def accuracy(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        multiplier: Optional[BoothMultiplier] = None,
        accumulator: Optional[ApproximateRippleAdder] = None,
    ) -> float:
        """Classification accuracy of the (approximate) fixed-point path."""
        predictions = self.predict(features, multiplier, accumulator)
        return float(np.mean(predictions == labels))
