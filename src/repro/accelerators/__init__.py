"""Approximate accelerators: dataflow framework, SAD, low-pass filter,
DCT, consolidated error correction, and the approximation manager."""

from .bank import (
    EpochRecord,
    MultiAcceleratorArchitecture,
    RunningApplication,
)
from .cec import (
    CEC_UNIT_AREA_GE,
    EDC_AREA_PER_ADDER_GE,
    ConsolidatedErrorCorrection,
    EdcAreaComparison,
    edc_area_comparison,
)
from .dataflow import DataflowAccelerator, ExactArithmetic, Node
from .dct import ApproximateDCT8x8, integer_dct_matrix
from .filters import LowPassFilterAccelerator, gaussian3x3_exact
from .hls import (
    AdderCandidate,
    ApproximateSynthesizer,
    SynthesisResult,
    default_adder_candidates,
)
from .neural import MLPClassifier, QuantizedMLP, make_classification_data
from .manager import (
    AcceleratorMode,
    AcceleratorProfile,
    ApplicationRequest,
    ApproximationManager,
    ModeAssignment,
)
from .sad import (
    SAD_VARIANT_CELLS,
    SADAccelerator,
    characterize_sad_family,
    make_sad_variants,
)
from .sobel import SobelAccelerator, sobel_exact

__all__ = [
    "EpochRecord",
    "MultiAcceleratorArchitecture",
    "RunningApplication",
    "CEC_UNIT_AREA_GE",
    "EDC_AREA_PER_ADDER_GE",
    "ConsolidatedErrorCorrection",
    "EdcAreaComparison",
    "edc_area_comparison",
    "DataflowAccelerator",
    "ExactArithmetic",
    "Node",
    "ApproximateDCT8x8",
    "integer_dct_matrix",
    "LowPassFilterAccelerator",
    "gaussian3x3_exact",
    "AdderCandidate",
    "ApproximateSynthesizer",
    "SynthesisResult",
    "default_adder_candidates",
    "AcceleratorMode",
    "AcceleratorProfile",
    "ApplicationRequest",
    "ApproximationManager",
    "ModeAssignment",
    "SAD_VARIANT_CELLS",
    "SADAccelerator",
    "characterize_sad_family",
    "make_sad_variants",
    "SobelAccelerator",
    "sobel_exact",
    "MLPClassifier",
    "QuantizedMLP",
    "make_classification_data",
]
