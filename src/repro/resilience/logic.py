"""Logic-layer transient faults: per-cycle bit flips on netlist nets.

Where :mod:`repro.logic.faults` models *permanent* stuck-at defects,
this module models *transient* single-event upsets: a net inverts for
exactly one stimulus vector ("cycle") and recovers.  The injection
rides the compiled bit-parallel engine -- one
:class:`~repro.logic.bitsim.CompiledNetlist` is compiled once and every
fault scenario is a packed XOR overlay (same word-row encoding as the
stuck-at overlay), so sweeping rates costs no netlist rebuilds.

Flip decisions come from a :class:`~repro.resilience.plan.FaultPlan`:
net ``n`` flips in lane ``j`` iff ``plan.lane_flips(n, n_lanes)[j]``,
a pure function of the plan -- reruns, other processes, and different
worker counts all regenerate the identical fault tape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..logic import bitsim
from ..logic.faults import fault_sites
from ..logic.netlist import Netlist
from ..logic.simulate import exhaustive_stimuli, random_stimuli
from .plan import FaultPlan

__all__ = [
    "TransientFaultReport",
    "packed_flip_overlay",
    "transient_fault_run",
]


@dataclass(frozen=True)
class TransientFaultReport:
    """Outcome of one seeded transient-fault run on a netlist.

    Attributes:
        netlist: Design name.
        n_vectors: Stimulus vectors simulated.
        n_flips: Total injected bit-flips across all nets and lanes.
        n_sites: Nets that received at least one flip.
        n_output_errors: Vectors whose primary outputs differ from the
            fault-free run.
        error_rate: ``n_output_errors / n_vectors`` (0 when no vectors).
        flips_per_site: Injected flip count per net (only nonzero nets).
    """

    netlist: str
    n_vectors: int
    n_flips: int
    n_sites: int
    n_output_errors: int
    error_rate: float
    flips_per_site: Dict[str, int]

    def to_record(self) -> Dict:
        return {
            "netlist": self.netlist,
            "n_vectors": self.n_vectors,
            "n_flips": self.n_flips,
            "n_sites": self.n_sites,
            "n_output_errors": self.n_output_errors,
            "error_rate": self.error_rate,
            "flips_per_site": dict(self.flips_per_site),
        }


def packed_flip_overlay(
    plan: FaultPlan,
    sites: Sequence[str],
    n_vectors: int,
) -> Dict[str, np.ndarray]:
    """Packed per-net XOR masks for one fault scenario.

    Only nets with at least one flip appear in the overlay, so the
    common low-rate case stays sparse.
    """
    overlay: Dict[str, np.ndarray] = {}
    for site in sites:
        lanes = plan.lane_flips(site, n_vectors)
        if lanes.any():
            overlay[site] = bitsim.pack_lanes(lanes)
    return overlay


def transient_fault_run(
    netlist: Netlist,
    plan: FaultPlan,
    stimuli: Optional[Dict[str, np.ndarray]] = None,
    n_random_vectors: int = 2048,
    stimulus_seed: int = 0,
    include_inputs: bool = False,
) -> TransientFaultReport:
    """Simulate one seeded transient-fault scenario against golden.

    Args:
        netlist: Design under test (compiled once, shared with golden).
        plan: Fault plan; must have ``layer == "logic"``.
        stimuli: Optional explicit stimulus vectors; default is the
            exhaustive sweep up to 16 inputs, random vectors above.
        n_random_vectors: Vector count for the random default.
        stimulus_seed: Seed of the random default stimulus.
        include_inputs: Also expose primary inputs as fault sites
            (models upsets on input registers).

    Returns:
        :class:`TransientFaultReport` with flip accounting and the
        fault-free/faulty output mismatch rate.
    """
    if plan.layer != "logic":
        raise ValueError(
            f"plan targets layer {plan.layer!r}; logic injection needs 'logic'"
        )
    inputs = list(netlist.inputs)
    if stimuli is None:
        if len(inputs) <= 16:
            stimuli = exhaustive_stimuli(inputs)
        else:
            stimuli = random_stimuli(inputs, n_random_vectors, stimulus_seed)
    n_vectors = int(np.asarray(stimuli[inputs[0]]).size) if inputs else 0
    sites: List[str] = list(fault_sites(netlist))
    if include_inputs:
        sites = inputs + sites
    overlay = packed_flip_overlay(plan, sites, n_vectors)

    compiled = bitsim.compile_netlist(netlist)
    packed = {net: bitsim.pack_lanes(stimuli[net]) for net in inputs}
    n_words = bitsim.n_words_for(n_vectors)
    valid = bitsim.lane_mask(n_vectors)
    golden = compiled.run_packed(packed, n_words)
    faulty = compiled.run_packed(packed, n_words, flip=overlay)
    mismatch = np.zeros(n_words, dtype=np.uint64)
    for net in netlist.outputs:
        slot = compiled.slot_of(net)
        mismatch |= golden[slot] ^ faulty[slot]
    n_errors = bitsim.popcount(mismatch & valid)

    flips_per_site = {
        net: bitsim.popcount(np.asarray(mask) & valid)
        for net, mask in overlay.items()
    }
    n_flips = sum(flips_per_site.values())
    return TransientFaultReport(
        netlist=netlist.name,
        n_vectors=n_vectors,
        n_flips=n_flips,
        n_sites=len(flips_per_site),
        n_output_errors=n_errors,
        error_rate=(n_errors / n_vectors) if n_vectors else 0.0,
        flips_per_site=flips_per_site,
    )
