"""Seeded fault-rate sweeps, packaged as campaign tasks.

One *sweep point* evaluates a workload under a
:class:`~repro.resilience.plan.FaultPlan` at one fault rate and returns
a JSON record -- which makes a fault sweep exactly a characterization
campaign: :func:`fault_sweep_tasks` builds the task list, the hardened
:func:`repro.campaign.run_campaign` fans it out, caches it, and survives
the pathological tasks fault experiments love to produce.

Workloads span the three layers:

========== ============== ================================================
workload   layer          measurement
========== ============== ================================================
``cell``   logic          Table III full-adder netlist under per-net SEUs
``gear``   datapath       GeAr adder under operand/carry upsets
``sad``    architecture   SAD accelerator under accumulator upsets,
                          optionally behind a :class:`QosGuard`
``filter`` architecture   low-pass filter SSIM vs fault rate (Fig. 10
                          extension)
``dct``    architecture   8x8 DCT coefficient error under MAC upsets
========== ============== ================================================

The plan seed for a sweep point derives from ``(task seed, workload,
rate)``, so every point is reproducible in isolation and the whole sweep
is bit-identical for any worker count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..campaign.task import CampaignTask, derive_seed
from .plan import FaultPlan

__all__ = [
    "WORKLOAD_LAYERS",
    "resilience_record",
    "fault_sweep_tasks",
    "run_fault_sweep",
    "guarded_sad_record",
]

#: Layer each sweep workload injects at.
WORKLOAD_LAYERS: Dict[str, str] = {
    "cell": "logic",
    "gear": "datapath",
    "sad": "architecture",
    "filter": "architecture",
    "dct": "architecture",
}


def _plan_for(params: Dict[str, Any], seed: int) -> FaultPlan:
    workload = params["workload"]
    rate = float(params["rate"])
    sites = params.get("sites")
    return FaultPlan(
        seed=derive_seed(seed, "fault-sweep", workload, repr(rate)),
        rate=rate,
        layer=WORKLOAD_LAYERS[workload],
        sites=tuple(sites) if sites else None,
    )


# ----------------------------------------------------------------------
# per-workload sweep points
# ----------------------------------------------------------------------

def _cell_record(params: Dict[str, Any], plan: FaultPlan) -> Dict[str, Any]:
    from ..adders.fulladder import FULL_ADDERS
    from .logic import transient_fault_run

    cell = params.get("cell", "AccuFA")
    report = transient_fault_run(FULL_ADDERS[cell].netlist(), plan)
    record = report.to_record()
    record["cell"] = cell
    return record


def _gear_record(
    params: Dict[str, Any], plan: FaultPlan, seed: int
) -> Dict[str, Any]:
    from ..adders.gear import GeArAdder, GeArConfig
    from .datapath import gear_add_with_faults

    config = GeArConfig(
        n=int(params.get("n", 8)), r=int(params.get("r", 2)),
        p=int(params.get("p", 2)),
    )
    adder = GeArAdder(config)
    n_samples = int(params.get("n_samples", 5000))
    rng = np.random.default_rng(derive_seed(seed, "gear-stimulus"))
    a = rng.integers(0, 1 << config.n, n_samples)
    b = rng.integers(0, 1 << config.n, n_samples)
    exact = a + b
    faulty = gear_add_with_faults(adder, a, b, plan)
    corrected, iterations = adder.add_with_correction(a, b)
    errors = faulty != exact
    return {
        "name": config.name,
        "n_samples": n_samples,
        "error_rate": float(np.mean(errors)),
        "mean_error_distance": float(np.abs(faulty - exact).mean()),
        "correction_iterations_mean": float(iterations.mean()),
        "corrected_error_rate_fault_free": float(np.mean(corrected != exact)),
    }


def _sad_stimulus(params: Dict[str, Any], seed: int):
    n_pixels = int(params.get("n_pixels", 16))
    n_samples = int(params.get("n_samples", 512))
    rng = np.random.default_rng(derive_seed(seed, "sad-stimulus"))
    a = rng.integers(0, 256, (n_samples, n_pixels))
    b = rng.integers(0, 256, (n_samples, n_pixels))
    return n_pixels, a, b


def guarded_sad_record(
    params: Dict[str, Any], plan: FaultPlan, seed: int
) -> Dict[str, Any]:
    """One SAD sweep point, optionally behind a :class:`QosGuard`.

    With ``params["qos"]`` truthy, the faulty accelerator runs as stage 0
    of a guard whose golden rung is the exact SAD; the returned record
    carries the degradation log summary alongside the raw fault impact.
    """
    from ..accelerators.sad import SADAccelerator
    from .arch import FaultySADAccelerator
    from .qos import QosGuard

    n_pixels, a, b = _sad_stimulus(params, seed)
    fa = params.get("fa", "AccuFA")
    approx_lsbs = int(params.get("approx_lsbs", 0))
    base = SADAccelerator(n_pixels, fa=fa, approx_lsbs=approx_lsbs)
    golden = SADAccelerator(n_pixels)
    faulty = FaultySADAccelerator(base, plan)
    exact_out = golden.sad(a, b)
    faulty_out = faulty.sad(a, b)
    affected = faulty_out != exact_out
    record: Dict[str, Any] = {
        "workload": "sad",
        "n_pixels": n_pixels,
        "n_blocks": int(a.shape[0]),
        "fa": fa,
        "approx_lsbs": approx_lsbs,
        "n_fault_affected": int(np.count_nonzero(affected)),
        "block_error_rate": float(np.mean(affected)),
        "mean_error_distance": float(np.abs(faulty_out - exact_out).mean()),
        "qos": None,
    }
    if params.get("qos"):
        guard = QosGuard(
            golden_fn=golden.sad,
            stages=[("faulty_approx", faulty.sad)],
            check=params.get("qos_check", "full"),
            canary_fraction=float(params.get("canary_fraction", 0.1)),
            tolerance=float(params.get("tolerance", 0.0)),
            seed=derive_seed(seed, "canary"),
            name=f"sad-qos-r{plan.rate}",
        )
        guarded_out, log = guard.run(a, b)
        record["qos"] = log.to_record()
        record["qos"]["exact_match"] = bool(
            np.array_equal(guarded_out, exact_out)
        )
    return record


def _filter_record(
    params: Dict[str, Any], plan: FaultPlan, seed: int
) -> Dict[str, Any]:
    from ..accelerators.filters import (
        LowPassFilterAccelerator,
        gaussian3x3_exact,
    )
    from ..media.ssim import ssim
    from ..media.synthetic import standard_images
    from .arch import FaultyLowPassFilter

    image_name = params.get("image", "gradient")
    size = int(params.get("size", 64))
    images = standard_images(size=size, seed=derive_seed(seed, "image") % 2**31)
    if image_name not in images:
        known = ", ".join(sorted(images))
        raise KeyError(f"unknown standard image {image_name!r}; known: {known}")
    image = images[image_name]
    accelerator = LowPassFilterAccelerator(
        fa=params.get("fa", "AccuFA"),
        approx_lsbs=int(params.get("approx_lsbs", 0)),
    )
    faulty = FaultyLowPassFilter(accelerator, plan)
    exact = gaussian3x3_exact(image)
    out = faulty.apply(image)
    return {
        "workload": "filter",
        "image": image_name,
        "fa": accelerator.fa,
        "approx_lsbs": accelerator.approx_lsbs,
        "ssim": ssim(exact, out),
        "pixel_error_rate": float(np.mean(out != exact)),
    }


def _dct_record(
    params: Dict[str, Any], plan: FaultPlan, seed: int
) -> Dict[str, Any]:
    from ..accelerators.dct import ApproximateDCT8x8
    from .arch import FaultyDCT8x8

    rng = np.random.default_rng(derive_seed(seed, "dct-stimulus"))
    n_blocks = int(params.get("n_blocks", 16))
    dct = ApproximateDCT8x8()
    faulty = FaultyDCT8x8(dct, plan)
    total_err = 0.0
    n_affected = 0
    for _ in range(n_blocks):
        block = rng.integers(0, 256, (8, 8))
        exact = dct.forward(block)
        out = faulty.forward(block)
        total_err += float(np.abs(out - exact).mean())
        n_affected += int(np.any(out != exact))
    return {
        "workload": "dct",
        "n_blocks": n_blocks,
        "mean_coeff_error": total_err / n_blocks,
        "block_error_rate": n_affected / n_blocks,
    }


def resilience_record(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One fault-sweep point (the ``resilience`` campaign task body)."""
    workload = params.get("workload")
    if workload not in WORKLOAD_LAYERS:
        known = ", ".join(sorted(WORKLOAD_LAYERS))
        raise ValueError(f"unknown workload {workload!r}; known: {known}")
    plan = _plan_for(params, seed)
    if workload == "cell":
        record: Dict[str, Any] = _cell_record(params, plan)
    elif workload == "gear":
        record = _gear_record(params, plan, seed)
    elif workload == "sad":
        record = guarded_sad_record(params, plan, seed)
    elif workload == "filter":
        record = _filter_record(params, plan, seed)
    else:
        record = _dct_record(params, plan, seed)
    record["rate"] = float(params["rate"])
    record["layer"] = plan.layer
    record["plan"] = plan.as_dict()
    return record


# ----------------------------------------------------------------------
# sweep construction / execution
# ----------------------------------------------------------------------

def fault_sweep_tasks(
    workload: str,
    rates: Sequence[float],
    seed: int = 0,
    **params: Any,
) -> List[CampaignTask]:
    """One ``resilience`` task per fault rate (shared sweep seed)."""
    if workload not in WORKLOAD_LAYERS:
        known = ", ".join(sorted(WORKLOAD_LAYERS))
        raise ValueError(f"unknown workload {workload!r}; known: {known}")
    return [
        CampaignTask(
            kind="resilience",
            params={"workload": workload, "rate": float(rate), **params},
            seed=seed,
        )
        for rate in rates
    ]


def run_fault_sweep(
    workload: str,
    rates: Sequence[float],
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
    max_attempts: int = 1,
    progress: Optional[Any] = None,
    **params: Any,
):
    """Run a fault-rate sweep through the hardened campaign engine.

    Returns the full :class:`~repro.campaign.runner.CampaignResult`
    (records in rate order, stats, and any structured failures).
    """
    from ..campaign import run_campaign

    tasks = fault_sweep_tasks(workload, rates, seed=seed, **params)
    return run_campaign(
        tasks,
        n_workers=n_workers,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        max_attempts=max_attempts,
        progress=progress,
    )
