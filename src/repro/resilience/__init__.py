"""Cross-layer fault injection and graceful degradation.

The paper's premise is that approximate hardware keeps *operating
acceptably under error*: GeAr detects and iteratively corrects missed
carries (Sec. 4), CEC bounds residual output error (Sec. 6.1), and
data-dependent resilience (Fig. 10) decides how much error a workload
tolerates.  This package supplies the runtime half of that story:

* :class:`FaultPlan` (:mod:`repro.resilience.plan`) -- one seeded,
  JSON-round-trippable description of a transient-fault scenario; every
  injector derives its flips purely from the plan, so scenarios are
  bit-identical across processes, worker counts and reruns.
* Layer injectors -- netlist-level single-event upsets on the compiled
  bitsim tape (:mod:`repro.resilience.logic`), operand / carry-chain /
  partial-product upsets in adders and multipliers
  (:mod:`repro.resilience.datapath`), and accumulator / line-buffer
  upsets inside the SAD, filter and DCT accelerators
  (:mod:`repro.resilience.arch`).
* :class:`QosGuard` (:mod:`repro.resilience.qos`) -- online quality
  monitoring (canary/full golden checks, custom detectors, CEC residual
  bounds) with an escalation ladder that ends at the golden path, plus a
  structured degradation log.
* Fault-rate sweeps (:mod:`repro.resilience.sweep`) -- every sweep point
  is a ``resilience`` campaign task, so sweeps inherit the hardened
  campaign runner's caching, retry, timeout and quarantine machinery.

CLI: ``repro resilience {cell,gear,sad,filter,dct}`` (see
``python -m repro.cli resilience --help``); docs in
``docs/RESILIENCE.md``.
"""

from .arch import FaultyDCT8x8, FaultyLowPassFilter, FaultySADAccelerator
from .datapath import (
    add_with_faults,
    gear_add_with_faults,
    inject_operand_flips,
    multiply_with_faults,
)
from .logic import TransientFaultReport, packed_flip_overlay, transient_fault_run
from .plan import FAULT_LAYERS, FaultPlan
from .qos import DegradationEvent, DegradationLog, QosGuard, residual_within_pmf
from .sweep import (
    WORKLOAD_LAYERS,
    fault_sweep_tasks,
    guarded_sad_record,
    resilience_record,
    run_fault_sweep,
)

__all__ = [
    "FAULT_LAYERS",
    "FaultPlan",
    "TransientFaultReport",
    "packed_flip_overlay",
    "transient_fault_run",
    "inject_operand_flips",
    "add_with_faults",
    "gear_add_with_faults",
    "multiply_with_faults",
    "FaultySADAccelerator",
    "FaultyLowPassFilter",
    "FaultyDCT8x8",
    "DegradationEvent",
    "DegradationLog",
    "QosGuard",
    "residual_within_pmf",
    "WORKLOAD_LAYERS",
    "fault_sweep_tasks",
    "guarded_sad_record",
    "resilience_record",
    "run_fault_sweep",
]
