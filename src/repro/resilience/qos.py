"""QosGuard: online quality monitoring with graceful degradation.

The paper's robustness mechanisms all share one shape: a cheap *detector*
(GeAr's ``Co AND Cp`` error signal, CEC's residual-PMF bound, a golden
check on a sampled canary subset) watches an approximate unit, and on
violation a *policy* escalates toward exactness (re-execute with
correction, reconfigure toward a more accurate variant, or fall back to
the golden path).  :class:`QosGuard` packages that shape for any batch
accelerator function:

* **stages** -- an escalation ladder of named implementations, cheapest
  and least accurate first.  Stage 0 is the normal operating point; each
  violation moves one rung toward exact.
* **monitor** -- per-batch quality check.  ``check="canary"`` compares a
  deterministic sampled subset against the golden function (cheap,
  probabilistic coverage); ``check="full"`` compares every element
  (models integrated EDC detection hardware); a custom ``detector_fn``
  (e.g. :meth:`GeArAdder.detect_errors <repro.adders.gear.GeArAdder.
  detect_errors>`) replaces the golden comparison entirely.
* **degradation log** -- every violation, the blocks it affected, and
  the action taken, as JSON-ready records.

The final rung is always the golden function itself, so a guard's output
is exact whenever every approximate stage is rejected -- that is the
graceful-degradation guarantee the acceptance tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors.pmf import ErrorPMF

__all__ = [
    "DegradationEvent",
    "DegradationLog",
    "QosGuard",
    "residual_within_pmf",
]

BatchFn = Callable[..., np.ndarray]


@dataclass(frozen=True)
class DegradationEvent:
    """One monitored decision of a :class:`QosGuard` run."""

    stage: str
    action: str  # "accept" | "escalate" | "fallback"
    check: str
    n_checked: int
    n_violations: int
    violating_indices: Tuple[int, ...]
    detail: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "action": self.action,
            "check": self.check,
            "n_checked": self.n_checked,
            "n_violations": self.n_violations,
            "violating_indices": list(self.violating_indices),
            "detail": self.detail,
        }


@dataclass
class DegradationLog:
    """Structured trace of one guarded evaluation."""

    guard: str
    events: List[DegradationEvent] = field(default_factory=list)
    final_stage: str = ""
    wall_s: float = 0.0

    @property
    def degraded(self) -> bool:
        """Whether any escalation happened (stage 0 was not accepted)."""
        return any(e.action != "accept" for e in self.events)

    @property
    def degraded_to_exact(self) -> bool:
        """Whether every approximate stage was rejected (golden served).

        This is the signal the service layer surfaces per request: a
        QoS-negotiated job whose runtime monitoring exhausted the
        escalation ladder was answered by the exact fallback.
        """
        return self.final_stage == "golden"

    @property
    def fault_affected_indices(self) -> Tuple[int, ...]:
        """Union of all violating batch indices across every stage."""
        seen: set = set()
        for event in self.events:
            seen.update(event.violating_indices)
        return tuple(sorted(seen))

    def to_record(self) -> Dict[str, Any]:
        return {
            "guard": self.guard,
            "final_stage": self.final_stage,
            "degraded": self.degraded,
            "degraded_to_exact": self.degraded_to_exact,
            "n_events": len(self.events),
            "fault_affected_indices": list(self.fault_affected_indices),
            "events": [e.to_record() for e in self.events],
            "wall_s": self.wall_s,
        }


def residual_within_pmf(
    residuals: np.ndarray, pmf: ErrorPMF, slack: int = 0
) -> np.ndarray:
    """Per-element check that residual errors lie inside a PMF's support.

    CEC calibration exposes the accelerator's output-error PMF; after
    correction, any residual whose magnitude exceeds the PMF's worst
    supported error (plus ``slack``) indicates a fault, not ordinary
    approximation noise.  Returns a boolean "is plausible" mask.
    """
    support = np.asarray(pmf.support, dtype=np.int64)
    bound = int(np.abs(support).max()) + int(slack)
    return np.abs(np.asarray(residuals, dtype=np.int64)) <= bound


class QosGuard:
    """Wrap an accelerator with online QoS monitoring and escalation.

    Args:
        golden_fn: Exact reference implementation (the final rung).
        stages: Escalation ladder of ``(name, fn)`` pairs, least exact
            first.  May be empty, in which case the guard simply runs
            golden.
        check: ``"canary"`` (sampled golden comparison) or ``"full"``
            (every element; models integrated detection hardware).
        canary_fraction: Fraction of batch elements checked in canary
            mode (at least one element).
        tolerance: Maximum acceptable ``|output - golden|`` per checked
            element; the paper's quality constraint.
        detector_fn: Optional ``detector_fn(*inputs) -> bool array``
            marking suspected-erroneous elements without touching the
            golden path (e.g. GeAr's error-detection signals).  When
            given, it replaces the golden comparison for stages whose
            name is in ``detector_stages`` (default: the first stage).
        detector_stages: Stage names monitored by ``detector_fn``.
        seed: Seed of the deterministic canary subset.
        name: Guard name used in logs.

    Example:
        >>> guard = QosGuard(lambda x: x * 2, [("broken", lambda x: x * 2 + 1)],
        ...                  check="full")
        >>> out, log = guard.run(np.arange(4))
        >>> bool((out == np.arange(4) * 2).all()), log.final_stage
        (True, 'golden')
    """

    def __init__(
        self,
        golden_fn: BatchFn,
        stages: Sequence[Tuple[str, BatchFn]],
        check: str = "canary",
        canary_fraction: float = 0.1,
        tolerance: float = 0.0,
        detector_fn: Optional[Callable[..., np.ndarray]] = None,
        detector_stages: Optional[Sequence[str]] = None,
        seed: int = 0,
        name: str = "qos",
    ) -> None:
        if check not in ("canary", "full"):
            raise ValueError(f"check must be 'canary' or 'full', got {check!r}")
        if not 0.0 < canary_fraction <= 1.0:
            raise ValueError(
                f"canary_fraction must be in (0, 1], got {canary_fraction}"
            )
        self.golden_fn = golden_fn
        self.stages = list(stages)
        self.check = check
        self.canary_fraction = canary_fraction
        self.tolerance = tolerance
        self.detector_fn = detector_fn
        if detector_stages is None and detector_fn is not None and self.stages:
            detector_stages = [self.stages[0][0]]
        self.detector_stages = set(detector_stages or [])
        self.seed = seed
        self.name = name

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def _canary_indices(self, n: int) -> np.ndarray:
        """Deterministic sampled subset of batch indices (sorted)."""
        if self.check == "full":
            return np.arange(n)
        k = max(1, int(round(self.canary_fraction * n)))
        rng = np.random.default_rng(self.seed)
        return np.sort(rng.choice(n, size=min(k, n), replace=False))

    def _golden_on(self, indices: np.ndarray, inputs: Tuple) -> np.ndarray:
        subset = tuple(np.asarray(x)[indices] for x in inputs)
        return np.asarray(self.golden_fn(*subset))

    def _violations(
        self, stage_name: str, output: np.ndarray, inputs: Tuple
    ) -> Tuple[np.ndarray, int, str]:
        """(violating batch indices, n checked, check label) for one stage."""
        n = int(np.asarray(output).shape[0])
        if self.detector_fn is not None and stage_name in self.detector_stages:
            flags = np.asarray(self.detector_fn(*inputs))
            while flags.ndim > 1:  # e.g. GeAr's per-sub-adder flag matrix
                flags = flags.any(axis=-1)
            return np.flatnonzero(flags), n, "detector"
        indices = self._canary_indices(n)
        golden = self._golden_on(indices, inputs)
        deviation = np.abs(
            np.asarray(output)[indices].astype(np.int64) -
            golden.astype(np.int64)
        )
        bad = deviation > self.tolerance
        label = "full" if self.check == "full" else "canary"
        return indices[bad], len(indices), label

    # ------------------------------------------------------------------
    # guarded execution
    # ------------------------------------------------------------------
    def run(self, *inputs) -> Tuple[np.ndarray, DegradationLog]:
        """Evaluate the batch through the escalation ladder.

        Returns:
            ``(output, log)``.  The output comes from the first stage
            whose monitored quality is acceptable, or from the golden
            function once every stage is rejected.
        """
        start = time.perf_counter()
        log = DegradationLog(guard=self.name)
        for position, (stage_name, stage_fn) in enumerate(self.stages):
            output = np.asarray(stage_fn(*inputs))
            violating, n_checked, label = self._violations(
                stage_name, output, inputs
            )
            if violating.size == 0:
                log.events.append(DegradationEvent(
                    stage=stage_name, action="accept", check=label,
                    n_checked=n_checked, n_violations=0,
                    violating_indices=(),
                ))
                log.final_stage = stage_name
                log.wall_s = time.perf_counter() - start
                return output, log
            next_rung = (
                self.stages[position + 1][0]
                if position + 1 < len(self.stages) else "golden"
            )
            log.events.append(DegradationEvent(
                stage=stage_name, action="escalate", check=label,
                n_checked=n_checked, n_violations=int(violating.size),
                violating_indices=tuple(int(i) for i in violating),
                detail=f"escalating to {next_rung}",
            ))
        output = np.asarray(self.golden_fn(*inputs))
        log.events.append(DegradationEvent(
            stage="golden", action="fallback", check="none",
            n_checked=int(output.shape[0]) if output.ndim else 1,
            n_violations=0, violating_indices=(),
            detail="exact path restored",
        ))
        log.final_stage = "golden"
        log.wall_s = time.perf_counter() - start
        return output, log
