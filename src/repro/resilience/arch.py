"""Architecture-layer transient faults: upsets inside accelerators.

At this layer faults strike the accelerator's *storage and reduction
state* rather than a single arithmetic unit:

* :class:`FaultySADAccelerator` -- flips on the absolute-difference
  stage outputs (site ``absdiff``, the accumulator inputs) and on each
  reduction level of the adder tree (sites ``tree0``, ``tree1``, ...);
* :class:`FaultyLowPassFilter` -- flips on the 9 shifted window terms
  (site ``linebuffer``: what a line-buffer upset corrupts) and on each
  adder-tree level;
* :class:`FaultyDCT8x8` -- flips on the MAC accumulator of each of the
  two matrix passes (sites ``acc_pass0`` / ``acc_pass1``).

Each wrapper takes an unmodified accelerator plus a
``layer == "architecture"`` :class:`~repro.resilience.plan.FaultPlan`
and behaves exactly like the wrapped accelerator at ``rate == 0`` --
the zero-rate identity every resilience test anchors on.  Flip masks
derive only from (plan, site, tensor shape), so a sweep is bit-identical
regardless of worker count or execution order.
"""

from __future__ import annotations

import numpy as np

from ..accelerators.dct import ApproximateDCT8x8
from ..accelerators.filters import LowPassFilterAccelerator, _KERNEL
from ..accelerators.sad import SADAccelerator
from .plan import FaultPlan

__all__ = [
    "FaultySADAccelerator",
    "FaultyLowPassFilter",
    "FaultyDCT8x8",
]


def _require_layer(plan: FaultPlan) -> None:
    if plan.layer != "architecture":
        raise ValueError(
            f"plan targets layer {plan.layer!r}; accelerator injection "
            f"needs 'architecture'"
        )


class FaultySADAccelerator:
    """A :class:`SADAccelerator` with seeded accumulator upsets.

    Example:
        >>> base = SADAccelerator(n_pixels=4)
        >>> quiet = FaultySADAccelerator(base, FaultPlan(0, 0.0, "architecture"))
        >>> int(quiet.sad([1, 2, 3, 4], [4, 3, 2, 1]))
        8
    """

    def __init__(self, accelerator: SADAccelerator, plan: FaultPlan) -> None:
        _require_layer(plan)
        self.accelerator = accelerator
        self.plan = plan

    @property
    def name(self) -> str:
        return f"{self.accelerator.name}+faults(r={self.plan.rate})"

    def sad(self, a, b) -> np.ndarray:
        """Faulty SAD: the reduction pipeline with per-stage upsets."""
        acc = self.accelerator
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape[-1] != acc.n_pixels or b.shape[-1] != acc.n_pixels:
            raise ValueError(
                f"last axis must have {acc.n_pixels} pixels, got "
                f"{a.shape[-1]} and {b.shape[-1]}"
            )
        values = acc.absolute_differences(a, b)
        values = values ^ self.plan.flip_mask(
            "absdiff", values.shape, acc.pixel_bits + 1
        )
        level = 0
        while values.shape[-1] > 1:
            n = values.shape[-1]
            even = values[..., 0 : n - (n % 2) : 2]
            odd = values[..., 1 : n : 2]
            summed = acc._tree_add(level, even, odd)
            summed = summed ^ self.plan.flip_mask(
                f"tree{level}", summed.shape, acc._tree[level].width + 1
            )
            if n % 2:
                summed = np.concatenate([summed, values[..., -1:]], axis=-1)
            values = summed
            level += 1
        return values[..., 0]


class FaultyLowPassFilter:
    """A :class:`LowPassFilterAccelerator` with line-buffer upsets."""

    def __init__(
        self, accelerator: LowPassFilterAccelerator, plan: FaultPlan
    ) -> None:
        _require_layer(plan)
        self.accelerator = accelerator
        self.plan = plan

    @property
    def name(self) -> str:
        return f"{self.accelerator.name}+faults(r={self.plan.rate})"

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Faulty filtering: upset window terms, then the (faulty) tree."""
        acc = self.accelerator
        img = np.asarray(image, dtype=np.int64)
        if img.ndim != 2:
            raise ValueError(f"expected a 2-D image, got shape {img.shape}")
        padded = np.pad(img, 1, mode="edge")
        terms = []
        for dy in range(3):
            for dx in range(3):
                window = padded[dy : dy + img.shape[0], dx : dx + img.shape[1]]
                shift = int(_KERNEL[dy, dx]).bit_length() - 1
                terms.append(window << shift)
        values = np.stack(terms, axis=-1)
        values = values ^ self.plan.flip_mask(
            "linebuffer", values.shape, acc.pixel_bits + 2
        )
        level = 0
        while values.shape[-1] > 1:
            n = values.shape[-1]
            even = values[..., 0 : n - (n % 2) : 2]
            odd = values[..., 1 : n : 2]
            summed = acc._tree[level].add(even, odd)
            summed = summed ^ self.plan.flip_mask(
                f"tree{level}", summed.shape, acc._tree[level].width + 1
            )
            if n % 2:
                summed = np.concatenate([summed, values[..., -1:]], axis=-1)
            values = summed
            level += 1
        result = values[..., 0] >> 4
        return np.clip(result, 0, (1 << acc.pixel_bits) - 1)


class FaultyDCT8x8:
    """An :class:`ApproximateDCT8x8` with MAC-accumulator upsets.

    The 2-D transform is two matrix passes; each pass's accumulated
    row/column sums are a fault site (``acc_pass0`` / ``acc_pass1``).
    Accumulator values are signed; the upset flips magnitude bits, which
    models a register upset in a sign-magnitude MAC datapath.
    """

    def __init__(self, dct: ApproximateDCT8x8, plan: FaultPlan) -> None:
        _require_layer(plan)
        self.dct = dct
        self.plan = plan

    @property
    def name(self) -> str:
        return f"{self.dct.name}+faults(r={self.plan.rate})"

    def _upset(self, values: np.ndarray, site: str) -> np.ndarray:
        sign = np.sign(values)
        magnitude = np.abs(values)
        # Accumulator magnitudes fit in ~20 bits (see ApproximateDCT8x8).
        magnitude = magnitude ^ self.plan.flip_mask(site, values.shape, 20)
        return sign * magnitude + (sign == 0) * magnitude

    def forward(self, block: np.ndarray) -> np.ndarray:
        """Faulty 2-D DCT: the two matrix passes with accumulator upsets."""
        dct = self.dct
        block = np.asarray(block, dtype=np.int64)
        if block.shape != (dct.SIZE, dct.SIZE):
            raise ValueError(f"expected an 8x8 block, got {block.shape}")
        stage1 = self._upset(dct._matmul(dct.matrix, block), "acc_pass0")
        stage1 = np.rint(stage1 / dct.SCALE).astype(np.int64)
        stage2 = self._upset(dct._matmul(stage1, dct.matrix.T), "acc_pass1")
        return np.rint(stage2 / dct.SCALE).astype(np.int64)
