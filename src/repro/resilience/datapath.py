"""Datapath-layer transient faults: operand, carry-chain and
partial-product upsets in adders and multipliers.

The injection sites mirror where soft errors strike real arithmetic
datapaths:

* ``operand_a`` / ``operand_b`` -- flips on the operand input buses;
* ``carry`` -- a flipped carry-out of a GeAr sub-adder window (the
  signal the paper's error-detection logic watches, Fig. 3);
* ``pp_ll`` / ``pp_lh`` / ``pp_hl`` / ``pp_hh`` -- flips on the four
  top-level partial products of the recursive multiplier.

All decisions come from a ``layer == "datapath"``
:class:`~repro.resilience.plan.FaultPlan`, so a scenario is regenerated
bit-identically from the plan alone.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..adders.gear import GeArAdder
from ..multipliers.recursive import RecursiveMultiplier
from .plan import FaultPlan

__all__ = [
    "inject_operand_flips",
    "add_with_faults",
    "gear_add_with_faults",
    "multiply_with_faults",
]


def _require_layer(plan: FaultPlan) -> None:
    if plan.layer != "datapath":
        raise ValueError(
            f"plan targets layer {plan.layer!r}; datapath injection needs "
            f"'datapath'"
        )


def inject_operand_flips(
    plan: FaultPlan, a, b, width: int, *context
) -> Tuple[np.ndarray, np.ndarray]:
    """Operand buses with plan-chosen bits flipped (sites ``operand_*``)."""
    _require_layer(plan)
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    a = a ^ plan.flip_mask("operand_a", a.shape, width, *context)
    b = b ^ plan.flip_mask("operand_b", b.shape, width, *context)
    return a, b


def add_with_faults(adder, a, b, plan: FaultPlan) -> np.ndarray:
    """Any adder's ``add`` evaluated on fault-injected operand buses.

    Works for every adder in the library (ripple, GeAr, prefix): the
    upset strikes the operand registers, the datapath itself runs
    unmodified.
    """
    a, b = inject_operand_flips(plan, a, b, adder.width)
    return adder.add(a, b)


def gear_add_with_faults(
    adder: GeArAdder, a, b, plan: FaultPlan
) -> np.ndarray:
    """GeAr addition with operand and carry-chain upsets.

    Beyond the operand buses, each sub-adder's carry-out bit (bit ``L``
    of its window sum) can flip (site ``carry``, one flip decision per
    element per window) -- exactly the signal the GeAr detection logic
    compares against the prediction bits, which is what makes this the
    natural adversary for :class:`~repro.resilience.qos.QosGuard`.
    """
    _require_layer(plan)
    cfg = adder.config
    a, b = inject_operand_flips(plan, a, b, cfg.n)
    mask = (1 << cfg.n) - 1
    a, b = a & mask, b & mask
    sums = adder._window_sums(a, b)
    if plan.applies_to("carry"):
        carry_bit = np.int64(1) << cfg.l
        for i in range(cfg.k):
            flips = plan.flip_mask("carry", sums[i].shape, 1, i).astype(bool)
            sums[i] = np.where(flips, sums[i] ^ carry_bit, sums[i])
    return adder._assemble(sums)


def multiply_with_faults(
    mul: RecursiveMultiplier, a, b, plan: FaultPlan
) -> np.ndarray:
    """Recursive multiplication with operand and partial-product upsets.

    The four top-level partial products of the Karatsuba-style
    decomposition (LL, LH, HL, HH) are each exposed as a fault site;
    the reduction adders then run unmodified on the upset values, so a
    single flipped product bit propagates exactly as it would in the
    physical reduction tree.
    """
    _require_layer(plan)
    w = mul.width
    a, b = inject_operand_flips(plan, a, b, w)
    mask = (1 << w) - 1
    a, b = a & mask, b & mask
    if w == 2:
        product = mul._leaf(0, 0).multiply(a, b)
        return product ^ plan.flip_mask("pp_ll", product.shape, 2 * w)
    h = w // 2
    half = (1 << h) - 1
    al, ah = a & half, (a >> h) & half
    bl, bh = b & half, (b >> h) & half
    parts = {
        "pp_ll": mul._multiply_rec(al, bl, h, 0, 0),
        "pp_lh": mul._multiply_rec(al, bh, h, 0, h),
        "pp_hl": mul._multiply_rec(ah, bl, h, h, 0),
        "pp_hh": mul._multiply_rec(ah, bh, h, h, h),
    }
    for site, value in parts.items():
        parts[site] = value ^ plan.flip_mask(site, value.shape, w)
    mid = mul._adder(w).add(parts["pp_lh"], parts["pp_hl"])
    acc = mul._adder(2 * w).add(parts["pp_hh"] << h, mid)
    return mul._adder(2 * w).add(acc << h, parts["pp_ll"])
