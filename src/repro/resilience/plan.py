"""Seeded, layer-agnostic transient-fault plans.

A :class:`FaultPlan` is the single source of randomness for every
transient-fault experiment in :mod:`repro.resilience`: it names the
abstraction *layer* the faults strike (``"logic"``, ``"datapath"`` or
``"architecture"``), the per-bit flip probability, and optionally the
subset of injection *sites* (net names, operand buses, accumulator
stages) it applies to.

Reproducibility is the whole design: the flip mask for a site is a pure
function of ``(plan.seed, plan.layer, site, context)`` through
:func:`repro.campaign.derive_seed`, never of evaluation order, worker
count, or which other sites were queried first.  Two processes holding
equal plans therefore inject bit-identical faults -- the property the
campaign engine relies on to make fault sweeps resumable and
worker-count invariant (and which ``tests/resilience`` proves with a
hypothesis property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..campaign.task import derive_seed

__all__ = ["FAULT_LAYERS", "FaultPlan"]

#: Abstraction layers a plan can target (paper Sec. 2's cross-layer stack).
FAULT_LAYERS = ("logic", "datapath", "architecture")


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible transient-fault scenario.

    Attributes:
        seed: Base seed; every site derives its own stream from it.
        rate: Per-bit flip probability per evaluated item.
        layer: Targeted abstraction layer (one of :data:`FAULT_LAYERS`).
        sites: Optional whitelist of site names; ``None`` = all sites
            the injector exposes.

    Example:
        >>> plan = FaultPlan(seed=1, rate=0.5, layer="datapath")
        >>> m1 = plan.flip_mask("operand_a", (4,), 8)
        >>> m2 = FaultPlan(1, 0.5, "datapath").flip_mask("operand_a", (4,), 8)
        >>> bool((m1 == m2).all())
        True
    """

    seed: int
    rate: float
    layer: str
    sites: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.layer not in FAULT_LAYERS:
            raise ValueError(
                f"layer must be one of {FAULT_LAYERS}, got {self.layer!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.sites is not None and not isinstance(self.sites, tuple):
            object.__setattr__(self, "sites", tuple(self.sites))

    # ------------------------------------------------------------------
    # site selection
    # ------------------------------------------------------------------
    def applies_to(self, site: str) -> bool:
        """Whether faults are injected at ``site`` under this plan."""
        return self.sites is None or site in self.sites

    # ------------------------------------------------------------------
    # deterministic randomness
    # ------------------------------------------------------------------
    def rng_for(self, site: str, *context: Any) -> np.random.Generator:
        """Site-local RNG, decorrelated across sites and context.

        The stream depends only on the plan identity and the
        ``(site, context)`` pair -- not on call order -- so any consumer
        can regenerate the exact flip sequence independently.
        """
        return np.random.default_rng(
            derive_seed(self.seed, "fault-plan", self.layer, site,
                        list(map(str, context)))
        )

    def flip_mask(
        self, site: str, shape: Tuple[int, ...] | int, bit_width: int,
        *context: Any,
    ) -> np.ndarray:
        """Int64 XOR mask of transient flips for one evaluated tensor.

        Each of the ``bit_width`` bits of each element flips
        independently with probability ``rate``.  Returns all-zeros when
        the plan does not apply to ``site``.
        """
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        if bit_width < 1 or bit_width > 62:
            raise ValueError(f"bit_width must be in [1, 62], got {bit_width}")
        if self.rate == 0.0 or not self.applies_to(site):
            return np.zeros(shape, dtype=np.int64)
        rng = self.rng_for(site, *context)
        bits = rng.random(shape + (bit_width,)) < self.rate
        weights = (np.int64(1) << np.arange(bit_width, dtype=np.int64))
        return (bits.astype(np.int64) * weights).sum(axis=-1)

    def lane_flips(self, site: str, n_lanes: int, *context: Any) -> np.ndarray:
        """Boolean per-lane flip decisions (one bit per stimulus lane).

        Used by the logic layer, where a "site" is a single net and each
        stimulus vector either sees the net inverted for that cycle or
        not.
        """
        if self.rate == 0.0 or not self.applies_to(site):
            return np.zeros(int(n_lanes), dtype=bool)
        rng = self.rng_for(site, *context)
        return rng.random(int(n_lanes)) < self.rate

    # ------------------------------------------------------------------
    # JSON round-trip (campaign params / failure reports)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "layer": self.layer,
            "sites": list(self.sites) if self.sites is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        sites = data.get("sites")
        return cls(
            seed=int(data["seed"]),
            rate=float(data["rate"]),
            layer=str(data["layer"]),
            sites=tuple(sites) if sites is not None else None,
        )
