"""SSIM: the Structural Similarity Index Measure (Wang et al., 2004).

The paper uses SSIM [36] as the psycho-visual quality metric of its
data-dependent-resilience study (Fig. 10).  This is a from-scratch
implementation of the standard formulation: local means, variances and
covariance over a Gaussian-weighted 11x11 window (sigma = 1.5), combined
as

    SSIM(x, y) = ((2 mu_x mu_y + C1)(2 sigma_xy + C2))
                 / ((mu_x^2 + mu_y^2 + C1)(sigma_x^2 + sigma_y^2 + C2))

with the usual constants ``C1 = (0.01 L)^2`` and ``C2 = (0.03 L)^2`` for
dynamic range ``L``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ssim", "ssim_map", "gaussian_window"]


def gaussian_window(size: int = 11, sigma: float = 1.5) -> np.ndarray:
    """Normalized 2-D Gaussian window used by the SSIM reference code."""
    if size < 1 or size % 2 == 0:
        raise ValueError(f"window size must be odd and >= 1, got {size}")
    half = size // 2
    coords = np.arange(-half, half + 1, dtype=np.float64)
    one_d = np.exp(-(coords**2) / (2.0 * sigma * sigma))
    window = np.outer(one_d, one_d)
    return window / window.sum()


def _filter2_valid(image: np.ndarray, window: np.ndarray) -> np.ndarray:
    """2-D correlation with 'valid' boundary handling (no padding bias)."""
    wh, ww = window.shape
    ih, iw = image.shape
    if ih < wh or iw < ww:
        raise ValueError(
            f"image {image.shape} smaller than window {window.shape}"
        )
    out = np.zeros((ih - wh + 1, iw - ww + 1), dtype=np.float64)
    for dy in range(wh):
        for dx in range(ww):
            out += window[dy, dx] * image[dy : dy + out.shape[0], dx : dx + out.shape[1]]
    return out


def ssim_map(
    reference: np.ndarray,
    distorted: np.ndarray,
    dynamic_range: float = 255.0,
    window_size: int = 11,
    sigma: float = 1.5,
) -> np.ndarray:
    """Local SSIM map over valid window positions.

    Args:
        reference: Reference image (2-D).
        distorted: Distorted image (same shape).
        dynamic_range: Pixel dynamic range ``L`` (255 for uint8).
        window_size: Gaussian window edge length (odd).
        sigma: Gaussian window sigma.

    Returns:
        2-D array of local SSIM values.
    """
    x = np.asarray(reference, dtype=np.float64)
    y = np.asarray(distorted, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.ndim != 2:
        raise ValueError(f"expected 2-D images, got shape {x.shape}")
    window = gaussian_window(window_size, sigma)
    c1 = (0.01 * dynamic_range) ** 2
    c2 = (0.03 * dynamic_range) ** 2

    mu_x = _filter2_valid(x, window)
    mu_y = _filter2_valid(y, window)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y
    # E[x^2] - E[x]^2 can come out a hair negative on flat regions from
    # floating-point cancellation; true variances are non-negative, so
    # clamp at 0 exactly as the reference SSIM implementation does.
    sigma_xx = np.maximum(_filter2_valid(x * x, window) - mu_xx, 0.0)
    sigma_yy = np.maximum(_filter2_valid(y * y, window) - mu_yy, 0.0)
    sigma_xy = _filter2_valid(x * y, window) - mu_xy

    numerator = (2.0 * mu_xy + c1) * (2.0 * sigma_xy + c2)
    denominator = (mu_xx + mu_yy + c1) * (sigma_xx + sigma_yy + c2)
    return numerator / denominator


def ssim(
    reference: np.ndarray,
    distorted: np.ndarray,
    dynamic_range: float = 255.0,
    window_size: int = 11,
    sigma: float = 1.5,
) -> float:
    """Mean SSIM between two images (1.0 = identical).

    Example:
        >>> img = np.tile(np.arange(32, dtype=float), (32, 1))
        >>> round(ssim(img, img), 6)
        1.0
    """
    return float(
        np.mean(ssim_map(reference, distorted, dynamic_range, window_size, sigma))
    )
