"""Deterministic synthetic images and video sequences.

The paper evaluates on real images ("a random set of input images",
Fig. 10) and video sequences (HEVC case study, Fig. 8/9).  Neither is
redistributable, so this module generates synthetic content spanning the
*content classes* the experiments depend on -- smoothness, texture
frequency, edge density, noise -- which is what drives both motion-
estimation behaviour and the data-dependent resilience spread of
Fig. 10.  All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = [
    "gradient_image",
    "checkerboard_image",
    "sinusoid_image",
    "blobs_image",
    "edges_image",
    "value_noise_image",
    "flat_noisy_image",
    "standard_images",
    "moving_sequence",
]


def _as_uint8(values: np.ndarray) -> np.ndarray:
    return np.clip(np.rint(values), 0, 255).astype(np.uint8)


def gradient_image(size: int = 64) -> np.ndarray:
    """Smooth diagonal gradient (maximally resilient content)."""
    y, x = np.mgrid[0:size, 0:size]
    return _as_uint8(255.0 * (x + y) / (2 * (size - 1)))


def checkerboard_image(size: int = 64, period: int = 8) -> np.ndarray:
    """High-contrast checkerboard (hard content for low-pass filters)."""
    y, x = np.mgrid[0:size, 0:size]
    return _as_uint8(255.0 * (((x // period) + (y // period)) % 2))


def sinusoid_image(size: int = 64, cycles: float = 6.0) -> np.ndarray:
    """Mid-frequency 2-D sinusoidal texture."""
    y, x = np.mgrid[0:size, 0:size]
    wave = np.sin(2 * np.pi * cycles * x / size) * np.cos(
        2 * np.pi * cycles * y / size
    )
    return _as_uint8(127.5 + 110.0 * wave)


def blobs_image(size: int = 64, n_blobs: int = 6, seed: int = 7) -> np.ndarray:
    """Soft Gaussian blobs on a mid-gray background (natural-ish)."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size]
    img = np.full((size, size), 96.0)
    for _ in range(n_blobs):
        cx, cy = rng.uniform(0, size, 2)
        sigma = rng.uniform(size / 16, size / 5)
        amp = rng.uniform(-80, 140)
        img += amp * np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / (2 * sigma**2))
    return _as_uint8(img)


def edges_image(size: int = 64, n_bars: int = 5, seed: int = 3) -> np.ndarray:
    """Sharp vertical/horizontal bars (edge-dominated content)."""
    rng = np.random.default_rng(seed)
    img = np.full((size, size), 40.0)
    for _ in range(n_bars):
        pos = int(rng.integers(0, size - size // 8))
        width = int(rng.integers(2, size // 8))
        level = float(rng.uniform(120, 255))
        if rng.random() < 0.5:
            img[:, pos : pos + width] = level
        else:
            img[pos : pos + width, :] = level
    return _as_uint8(img)


def value_noise_image(size: int = 64, grid: int = 8, seed: int = 11) -> np.ndarray:
    """Smoothed value noise (cloud-like natural texture)."""
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(0, 255, size=(grid + 1, grid + 1))
    ys = np.linspace(0, grid, size)
    xs = np.linspace(0, grid, size)
    y0 = np.floor(ys).astype(int).clip(0, grid - 1)
    x0 = np.floor(xs).astype(int).clip(0, grid - 1)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    sy = fy * fy * (3 - 2 * fy)
    sx = fx * fx * (3 - 2 * fx)
    c00 = coarse[np.ix_(y0, x0)]
    c01 = coarse[np.ix_(y0, x0 + 1)]
    c10 = coarse[np.ix_(y0 + 1, x0)]
    c11 = coarse[np.ix_(y0 + 1, x0 + 1)]
    top = c00 * (1 - sx) + c01 * sx
    bottom = c10 * (1 - sx) + c11 * sx
    return _as_uint8(top * (1 - sy) + bottom * sy)


def flat_noisy_image(size: int = 64, sigma: float = 18.0, seed: int = 5) -> np.ndarray:
    """Flat field with additive Gaussian sensor noise."""
    rng = np.random.default_rng(seed)
    return _as_uint8(128.0 + rng.normal(0, sigma, size=(size, size)))


def standard_images(size: int = 64, seed: int = 0) -> Dict[str, np.ndarray]:
    """The 7-image evaluation set used for the Fig. 10 reproduction.

    Seven content classes with deliberately different spectral makeup,
    mirroring the spread of "a random set of input images".
    """
    return {
        "gradient": gradient_image(size),
        "checkerboard": checkerboard_image(size),
        "sinusoid": sinusoid_image(size),
        "blobs": blobs_image(size, seed=seed + 7),
        "edges": edges_image(size, seed=seed + 3),
        "value_noise": value_noise_image(size, seed=seed + 11),
        "flat_noisy": flat_noisy_image(size, seed=seed + 5),
    }


def moving_sequence(
    n_frames: int = 4,
    size: int = 64,
    seed: int = 0,
    motion: tuple[int, int] = (2, 1),
    noise_sigma: float = 2.0,
) -> List[np.ndarray]:
    """Synthetic video: textured background panning plus a moving object.

    The background is value noise translated by ``motion`` per frame and
    a bright blob moves independently -- exactly the structure block
    motion estimation is built to exploit, so approximate-SAD effects on
    motion vectors and residual bits are observable.

    Args:
        n_frames: Number of frames.
        size: Frame edge length in pixels.
        seed: Seed for textures and noise.
        motion: Global (dx, dy) background pan per frame.
        noise_sigma: Per-frame sensor-noise sigma.

    Returns:
        List of uint8 frames.
    """
    rng = np.random.default_rng(seed)
    big = value_noise_image(size * 2, grid=10, seed=seed + 1).astype(np.float64)
    frames: List[np.ndarray] = []
    y, x = np.mgrid[0:size, 0:size]
    for t in range(n_frames):
        ox = (t * motion[0]) % size
        oy = (t * motion[1]) % size
        frame = big[oy : oy + size, ox : ox + size].copy()
        # Independent moving object.
        cx = (size // 4 + 3 * t) % size
        cy = (size // 3 + 2 * t) % size
        frame += 120.0 * np.exp(
            -((x - cx) ** 2 + (y - cy) ** 2) / (2 * (size / 12) ** 2)
        )
        frame += rng.normal(0, noise_sigma, size=frame.shape)
        frames.append(_as_uint8(frame))
    return frames
