"""Multi-scale SSIM (Wang, Simoncelli & Bovik, 2003).

Fig. 10's psycho-visual argument benefits from a scale-aware metric:
errors confined to the LSBs of a filter datapath are high-frequency and
penalized differently at different viewing scales.  MS-SSIM evaluates
contrast/structure at several dyadic scales (average-pool downsampling)
and luminance only at the coarsest, combining them with the standard
exponents.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .ssim import _filter2_valid, gaussian_window

__all__ = ["ms_ssim"]

#: Standard per-scale weights from the original MS-SSIM paper.
DEFAULT_WEIGHTS: Tuple[float, ...] = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333)


def _luminance_cs(
    x: np.ndarray, y: np.ndarray, dynamic_range: float,
    window_size: int, sigma: float,
) -> Tuple[float, float]:
    """Mean luminance and contrast-structure terms of one scale."""
    window = gaussian_window(window_size, sigma)
    c1 = (0.01 * dynamic_range) ** 2
    c2 = (0.03 * dynamic_range) ** 2
    mu_x = _filter2_valid(x, window)
    mu_y = _filter2_valid(y, window)
    sigma_xx = _filter2_valid(x * x, window) - mu_x * mu_x
    sigma_yy = _filter2_valid(y * y, window) - mu_y * mu_y
    sigma_xy = _filter2_valid(x * y, window) - mu_x * mu_y
    luminance = (2 * mu_x * mu_y + c1) / (mu_x**2 + mu_y**2 + c1)
    cs = (2 * sigma_xy + c2) / (sigma_xx + sigma_yy + c2)
    return float(np.mean(luminance)), float(np.mean(cs))


def _downsample(image: np.ndarray) -> np.ndarray:
    """2x average pooling (truncating odd edges)."""
    h, w = image.shape
    h2, w2 = h - h % 2, w - w % 2
    view = image[:h2, :w2]
    return (
        view[0::2, 0::2] + view[1::2, 0::2]
        + view[0::2, 1::2] + view[1::2, 1::2]
    ) / 4.0


def ms_ssim(
    reference: np.ndarray,
    distorted: np.ndarray,
    dynamic_range: float = 255.0,
    weights: Sequence[float] | None = None,
    window_size: int = 11,
    sigma: float = 1.5,
) -> float:
    """Multi-scale SSIM between two images.

    The number of scales adapts to the image: scales stop before the
    downsampled image would be smaller than the analysis window, and the
    weight vector is truncated and renormalized accordingly.

    Args:
        reference: Reference image (2-D).
        distorted: Distorted image (same shape).
        dynamic_range: Pixel dynamic range ``L``.
        weights: Per-scale exponents (defaults to the published five).
        window_size: Gaussian window size per scale.
        sigma: Gaussian sigma per scale.

    Returns:
        MS-SSIM score (1.0 = identical).
    """
    x = np.asarray(reference, dtype=np.float64)
    y = np.asarray(distorted, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.ndim != 2:
        raise ValueError(f"expected 2-D images, got shape {x.shape}")
    if min(x.shape) < window_size:
        raise ValueError(
            f"image {x.shape} smaller than the {window_size}x{window_size} window"
        )
    full_weights = tuple(weights) if weights is not None else DEFAULT_WEIGHTS
    if not full_weights:
        raise ValueError("need at least one scale weight")

    # Determine usable scale count.
    n_scales = 0
    h, w = x.shape
    while n_scales < len(full_weights) and min(h, w) >= window_size:
        n_scales += 1
        h, w = h // 2, w // 2
    used = np.asarray(full_weights[:n_scales], dtype=float)
    used = used / used.sum()

    score = 1.0
    for scale in range(n_scales):
        luminance, cs = _luminance_cs(x, y, dynamic_range, window_size, sigma)
        if scale == n_scales - 1:
            score *= max(luminance * cs, 1e-12) ** used[scale]
        else:
            score *= max(cs, 1e-12) ** used[scale]
            x, y = _downsample(x), _downsample(y)
    return float(score)
