"""Synthetic media generation and psycho-visual quality metrics."""

from .msssim import ms_ssim
from .ssim import gaussian_window, ssim, ssim_map
from .synthetic import (
    blobs_image,
    checkerboard_image,
    edges_image,
    flat_noisy_image,
    gradient_image,
    moving_sequence,
    sinusoid_image,
    standard_images,
    value_noise_image,
)

__all__ = [
    "ms_ssim",
    "gaussian_window",
    "ssim",
    "ssim_map",
    "blobs_image",
    "checkerboard_image",
    "edges_image",
    "flat_noisy_image",
    "gradient_image",
    "moving_sequence",
    "sinusoid_image",
    "standard_images",
    "value_noise_image",
]
