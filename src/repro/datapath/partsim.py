"""Partitioned-SIMD evaluation of the paper's word-level datapaths.

The bit-parallel netlist engine (:mod:`repro.logic.bitsim`) packs 64
*stimuli* per machine word but still walks one gate at a time.  This
module packs whole *operations*: several independent N-bit additions
(or absolute differences, or adder-tree reductions) ride side by side
in one ``uint64`` NumPy lane, separated by guard bits so their carries
cannot interact -- the ieee754fpu ``part_mul_add`` idiom, where a
datapath is cut by *partition points* and approximations (dropped
inter-block carries, windowed sub-adders) become mask edits on those
points rather than per-element Python loops.

Layout
------
A :class:`PartitionLayout` slices the 64-bit word into power-of-two
*slots* (8/16/32/64 bits), each holding one ``field_bits``-wide payload
plus at least one guard bit.  Because a slot is a power of two, packing
is a single dtype pass: ``x.astype(uint16).view(uint64)`` lands four
consecutive values in the four slots of one word (little-endian), so no
shift/or assembly loop is ever needed.

Evaluation primitives
---------------------
* word addition -- two packed operands whose payloads are masked to
  ``field_bits`` add without any cross-slot carry (the guard bit absorbs
  each field's carry-out), so a plain ``+`` performs ``fields_per_word``
  independent additions;
* :func:`packed_window_add` -- the GeAr / heterogeneous-GeAr sub-adder
  equation evaluated on every field at once (each window is shifted,
  masked at every slot base, summed, and its kept bits OR-ed into the
  result);
* :func:`packed_cell_ripple` -- an arbitrary Table III full-adder truth
  table rippled across a bit range of every field simultaneously, via
  the eight minterm masks of the cell (the MaskedFullAdder of SNIPPETS);
* :func:`packed_absdiff` -- the classic SWAR ``|a - b|`` for exact
  subtractor stages (guard-biased subtract, then conditional negate).

The consumers (``eval_mode="partsim"`` on the ripple/GeAr/Hetero
adders, the recursive multipliers and the SAD accelerator) are proven
bit-identical to their scalar references through the
:mod:`repro.verify` oracle registry; :func:`sad_surface` is the
end-to-end Fig. 8 motion-estimation kernel that the partitioned layer
accelerates wholesale.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "PartitionLayout",
    "bit_reverse_permutation",
    "packed_absdiff",
    "packed_cell_ripple",
    "packed_window_add",
    "sad_surface",
    "sad_surface_reference",
]

#: Slot widths that pack with one dtype view (power-of-two lanes).
_SLOT_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def _require_little_endian() -> None:
    # The astype/view packing identifies slot k of a word with byte
    # lanes k -- true only on little-endian hosts (every platform this
    # repo targets).  Fail loudly rather than mis-pack on exotic hosts.
    if sys.byteorder != "little":
        raise RuntimeError(
            "partitioned-SIMD packing requires a little-endian host"
        )


class PartitionLayout:
    """Partition of a 64-bit word into independent payload fields.

    Args:
        field_bits: Payload width of one field (the datapath's operand
            or result width, including any carry-out bit the consumer
            wants to keep).
        guard_bits: Minimum spacer above each payload; at least one
            guard bit is required so a field's carry-out cannot reach
            its neighbour's LSB.

    The slot width is the smallest power of two (8/16/32/64) holding
    ``field_bits + guard_bits``; ``fields_per_word = 64 // slot_bits``.

    Example:
        >>> layout = PartitionLayout(9)    # 8-bit add + carry-out
        >>> layout.slot_bits, layout.fields_per_word
        (16, 4)
    """

    def __init__(self, field_bits: int, guard_bits: int = 1) -> None:
        if field_bits < 1:
            raise ValueError(f"field_bits must be >= 1, got {field_bits}")
        if guard_bits < 1:
            raise ValueError(f"guard_bits must be >= 1, got {guard_bits}")
        need = field_bits + guard_bits
        if need > 64:
            raise ValueError(
                f"field_bits + guard_bits = {need} exceeds the 64-bit word"
            )
        _require_little_endian()
        slot = 8
        while slot < need:
            slot *= 2
        self.field_bits = field_bits
        self.slot_bits = slot
        self.slot_dtype = _SLOT_DTYPES[slot]
        self.fields_per_word = 64 // slot
        # Bit 0 of every slot -- the generator of all partition masks.
        base = 0
        for k in range(self.fields_per_word):
            base |= 1 << (slot * k)
        self.base = np.uint64(base)
        self.field_mask = self.spread((1 << field_bits) - 1)

    def spread(self, value: int) -> np.uint64:
        """``value`` replicated at every slot base (a partition mask).

        ``value`` must fit in one slot; adjacent replicas then cannot
        overlap, so the replication is an exact multiplication by
        :attr:`base`.
        """
        if not 0 <= value < (1 << self.slot_bits):
            raise ValueError(
                f"value needs more than {self.slot_bits} slot bits: {value}"
            )
        return np.uint64(int(self.base) * value)

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def pack(self, values: np.ndarray) -> np.ndarray:
        """Pack integer payloads along the last axis into uint64 words.

        ``values[..., i]`` lands in slot ``i % fields_per_word`` of word
        ``i // fields_per_word``; the tail word is zero-padded.  Values
        are truncated to the slot width (callers pass payloads already
        masked to ``field_bits``).
        """
        arr = np.asarray(values, dtype=np.int64)
        count = arr.shape[-1]
        pad = (-count) % self.fields_per_word
        if pad:
            widths = [(0, 0)] * (arr.ndim - 1) + [(0, pad)]
            arr = np.pad(arr, widths)
        # order="C": the uint64 view below needs the slots of one word
        # adjacent in memory, but astype's default order="K" preserves
        # e.g. the Fortran order a fancy-indexed input may carry.
        return arr.astype(self.slot_dtype, order="C").view(np.uint64)

    def unpack(self, words: np.ndarray, count: int) -> np.ndarray:
        """Inverse of :meth:`pack`: the first ``count`` slot payloads.

        Slots are returned verbatim (no field masking), so results that
        legitimately use the guard position -- e.g. a kept carry-out --
        survive the round trip.
        """
        words = np.ascontiguousarray(words)
        return words.view(self.slot_dtype).astype(np.int64)[..., :count]


@lru_cache(maxsize=32)
def bit_reverse_permutation(n: int) -> np.ndarray:
    """Bit-reversal permutation of ``0..n-1`` (``n`` a power of two).

    Loading a reduction tree's leaves in bit-reversed order makes the
    *adjacent-pair* tree equal to repeated fold-in-half: after any
    number of "add first half to second half" steps, element ``j`` of
    the survivors is exactly the tree's pair ``j`` -- which is what lets
    the packed SAD tree fold whole words per level while reproducing
    the even/odd pairing of the physical adder tree bit-for-bit.
    """
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 1, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    rev.setflags(write=False)
    return rev


# ----------------------------------------------------------------------
# packed primitives
# ----------------------------------------------------------------------

def packed_window_add(
    layout: PartitionLayout,
    wa: np.ndarray,
    wb: np.ndarray,
    windows: Sequence[Tuple[int, int, int, int]],
    n: int,
) -> np.ndarray:
    """Block-adder (GeAr / heterogeneous) sum on every packed field.

    Args:
        layout: Partition layout; fields must hold ``n + 1`` bits.
        wa: Packed first operands (payloads masked to ``n`` bits).
        wb: Packed second operands.
        windows: Per sub-adder ``(start, width, p, r)``: the sub-adder
            sums the ``width``-bit operand windows at bit ``start`` with
            carry-in 0 and contributes its ``r`` result bits above the
            ``p`` prediction bits (at ``start + p``).  Low to high; the
            final carry (bit ``n``) is the last window's overflow.
        n: Operand width in bits.

    Every step is a plain word operation: the window is extracted with a
    shift and a spread mask, summed (the guard bit absorbs the window
    carry), and the kept slice OR-ed into the packed result.  Dropping
    an inter-block carry is therefore literally a partition-mask edit,
    never a per-element loop.
    """
    if n + 1 > layout.slot_bits:
        raise ValueError(
            f"fields of {layout.slot_bits} bits cannot hold the "
            f"{n + 1}-bit block-adder result"
        )
    result = np.zeros_like(wa)
    window_sum = None
    last_width = 0
    for start, width, p, r in windows:
        mask_w = layout.spread((1 << width) - 1)
        window_sum = ((wa >> start) & mask_w) + ((wb >> start) & mask_w)
        keep = layout.spread((1 << r) - 1)
        result = result | (((window_sum >> p) & keep) << (start + p))
        last_width = width
    result = result | (((window_sum >> last_width) & layout.base) << n)
    return result


def packed_cell_ripple(
    layout: PartitionLayout,
    wa: np.ndarray,
    wb: np.ndarray,
    carry: np.ndarray,
    table: Sequence[Tuple[int, int]],
    start: int,
    stop: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Ripple one full-adder cell over bits ``[start, stop)`` of every
    field simultaneously.

    Args:
        layout: Partition layout of the packed operands.
        wa: Packed first operands.
        wb: Packed second operands.
        carry: Slot-base-aligned carry-in plane (0/1 at every slot base).
        table: The cell's 8-row ``(sum, cout)`` truth table indexed by
            ``(a << 2) | (b << 1) | cin`` -- any Table III cell.
        start: First bit position to ripple (inclusive).
        stop: One past the last bit position.

    Returns:
        ``(sums, carry_out)``: the packed sum bits over ``[start, stop)``
        (other positions zero) and the base-aligned carry-out plane.

    This is the masked-full-adder evaluation: per bit position the three
    input planes are extracted at every slot base and the cell's minterm
    masks select which fields see which truth-table row, so one Python
    step evaluates the cell across all packed fields at once.
    """
    base = layout.base
    sums = np.zeros_like(wa)
    for bit in range(start, stop):
        ap = (wa >> bit) & base
        bp = (wb >> bit) & base
        na, nb = ap ^ base, bp ^ base
        nc = carry ^ base
        sum_plane = np.zeros_like(wa)
        cout_plane = np.zeros_like(wa)
        for row in range(8):
            s_bit, c_bit = table[row]
            if not (s_bit or c_bit):
                continue
            minterm = (
                (ap if row & 4 else na)
                & (bp if row & 2 else nb)
                & (carry if row & 1 else nc)
            )
            if s_bit:
                sum_plane = sum_plane | minterm
            if c_bit:
                cout_plane = cout_plane | minterm
        sums = sums | (sum_plane << bit)
        carry = cout_plane
    return sums, carry


def packed_absdiff(
    layout: PartitionLayout, wa: np.ndarray, wb: np.ndarray
) -> np.ndarray:
    """Exact ``|a - b|`` on every packed field (lane absolute difference).

    Computed as ``max(a, b) - min(a, b)`` on the slot-dtype lane view of
    the words: three vectorized passes over the slots, valid for the
    full slot value range, and the output lands back in the same
    partition layout.  Matches the exact subtractor + abs stage of the
    SAD datapath bit for bit.
    """
    lanes_a = np.ascontiguousarray(wa).view(layout.slot_dtype)
    lanes_b = np.ascontiguousarray(wb).view(layout.slot_dtype)
    out = np.maximum(lanes_a, lanes_b)
    out -= np.minimum(lanes_a, lanes_b)
    return out.view(np.uint64)


# ----------------------------------------------------------------------
# Fig. 8 motion-estimation surface
# ----------------------------------------------------------------------

def _block_offsets(block_size: int) -> list:
    return [(r, c) for r in range(block_size) for c in range(block_size)]


def _packed_block_positions(
    frame: np.ndarray, block_size: int, layout: PartitionLayout
) -> np.ndarray:
    """Every ``block_size``-square block of ``frame``, packed.

    Returns a ``(n_posy * n_posx, n_words)`` uint64 array: row
    ``y * n_posx + x`` holds the block whose top-left corner is
    ``(y, x)``, its pixels laid row-major into consecutive slots.  Built
    as one sliding-window view over the slot-dtype frame plus a single
    contiguous copy -- one pass regardless of frame size.
    """
    h, w = frame.shape
    n_posy, n_posx = h - block_size + 1, w - block_size + 1
    n_pixels = block_size * block_size
    src = frame.astype(layout.slot_dtype)
    windows = np.lib.stride_tricks.sliding_window_view(
        src, (block_size, block_size)
    )
    blocks = np.ascontiguousarray(windows)
    return blocks.reshape(n_posy * n_posx, n_pixels).view(np.uint64)


def _surface_geometry(
    frame_shape: Tuple[int, int],
    block_size: int,
    block_stride: int,
    search: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Block origins and displacement offsets of the SAD surface."""
    h, w = frame_shape
    oy = np.arange(search, h - block_size - search + 1, block_stride)
    ox = np.arange(search, w - block_size - search + 1, block_stride)
    if oy.size == 0 or ox.size == 0:
        raise ValueError(
            f"frame {h}x{w} too small for block_size={block_size}, "
            f"search={search}"
        )
    disp = np.arange(-search, search + 1)
    dy = np.repeat(disp, disp.size)
    dx = np.tile(disp, disp.size)
    gy, gx = np.meshgrid(oy, ox, indexing="ij")
    return gy.ravel(), gx.ravel(), dy, dx


def sad_surface(
    accel,
    cur: np.ndarray,
    ref: np.ndarray,
    block_size: int = 8,
    block_stride: int | None = None,
    search: int = 4,
) -> np.ndarray:
    """Full-search SAD surface of a frame pair through the packed layer.

    For every current-frame block (origins on a ``block_stride`` grid)
    and every displacement in ``[-search, search]^2``, computes the
    accelerator's SAD against the displaced reference block -- the bulk
    kernel behind the paper's Fig. 8 motion-estimation study.  The
    whole surface stays in the partitioned word domain: the reference
    frame is packed once per block position, candidates are gathered as
    words, and the absolute-difference + adder-tree datapath runs as a
    handful of word operations over all (block, displacement) pairs at
    once.

    Only exact-cell accelerators are supported (``approx_lsbs == 0``):
    their subtract/abs stage is the SWAR :func:`packed_absdiff` and
    every tree level is a guarded word addition.  Approximate variants
    evaluate through the accelerator's own packed batch path instead
    (``SADAccelerator(eval_mode="partsim").sad``).

    Args:
        accel: A :class:`~repro.accelerators.sad.SADAccelerator` with
            ``approx_lsbs == 0`` and ``n_pixels == block_size ** 2``.
        cur: Current frame, ``(H, W)`` non-negative integers.
        ref: Reference frame, same shape.
        block_size: Square block edge; ``block_size ** 2`` must equal
            ``accel.n_pixels``.
        block_stride: Grid step between block origins (default:
            ``block_size``, i.e. non-overlapping blocks).
        search: Displacement radius.

    Returns:
        ``(n_displacements, n_blocks)`` int64 SAD values;
        displacement ``(dy, dx)`` is row
        ``(dy + search) * (2 * search + 1) + (dx + search)`` and blocks
        are row-major over the origin grid.
    """
    if accel.approx_lsbs != 0:
        raise ValueError(
            "sad_surface runs the SWAR datapath and supports exact-cell "
            "accelerators only (approx_lsbs == 0); use "
            "SADAccelerator(eval_mode='partsim').sad for approximate "
            "variants"
        )
    n_pixels = block_size * block_size
    if accel.n_pixels != n_pixels:
        raise ValueError(
            f"accelerator reduces {accel.n_pixels} pixels but "
            f"block_size={block_size} gives {n_pixels}"
        )
    cur = np.asarray(cur, dtype=np.int64)
    ref = np.asarray(ref, dtype=np.int64)
    if cur.shape != ref.shape or cur.ndim != 2:
        raise ValueError("cur and ref must be 2-D frames of equal shape")
    if block_stride is None:
        block_stride = block_size
    # Field capacity: the largest value in the datapath is the final
    # SAD, n_pixels * (2**pixel_bits - 1); the layout's guard bit above
    # it keeps every tree-level word addition carry-isolated.
    total_bits = (n_pixels * ((1 << accel.pixel_bits) - 1)).bit_length()
    layout = PartitionLayout(max(total_bits, accel.pixel_bits + 1))

    oy, ox, dy, dx = _surface_geometry(
        cur.shape, block_size, block_stride, search
    )
    n_posx = cur.shape[1] - block_size + 1

    # Current blocks: one strided slice per in-block offset on the
    # origin grid only.
    cur_src = cur.astype(layout.slot_dtype)
    cur_blocks = np.empty((oy.size, n_pixels), dtype=layout.slot_dtype)
    for i, (r, c) in enumerate(_block_offsets(block_size)):
        cur_blocks[:, i] = cur_src[oy + r, ox + c]
    cur_words = cur_blocks.view(np.uint64)

    # Reference candidates: every block position packed once, then each
    # (displacement, block) pair is one word-row gather.
    ref_words = _packed_block_positions(ref, block_size, layout)
    pos = (oy[None, :] + dy[:, None]) * n_posx + (ox[None, :] + dx[:, None])
    cand = ref_words[pos]  # (n_disp, n_blocks, n_words)

    diff = packed_absdiff(layout, cur_words[None, :, :], cand)
    # Adder tree: fold word halves (exact levels are plain guarded word
    # adds), then collapse the surviving word's slots.
    while diff.shape[-1] > 1:
        half = diff.shape[-1] // 2
        diff = diff[..., :half] + diff[..., half:]
    word = diff[..., 0]
    slot = layout.slot_bits
    span = 64
    while span > slot:
        span //= 2
        word = (word + (word >> span)) & np.uint64((1 << span) - 1)
    return word.astype(np.int64)


def sad_surface_reference(
    accel,
    cur: np.ndarray,
    ref: np.ndarray,
    block_size: int = 8,
    block_stride: int | None = None,
    search: int = 4,
) -> np.ndarray:
    """The same surface through the accelerator's batch ``sad`` API.

    Gathers every (block, displacement) operand pair into int64 pixel
    arrays and performs one bulk ``accel.sad`` call -- the pre-existing
    fast-path formulation of the Fig. 8 kernel, and the baseline the
    partitioned path is benchmarked and cross-checked against.
    """
    cur = np.asarray(cur, dtype=np.int64)
    ref = np.asarray(ref, dtype=np.int64)
    if block_stride is None:
        block_stride = block_size
    oy, ox, dy, dx = _surface_geometry(
        cur.shape, block_size, block_stride, search
    )
    offs = _block_offsets(block_size)
    rr = np.asarray([r for r, _ in offs])
    cc = np.asarray([c for _, c in offs])
    cur_blocks = cur[oy[:, None] + rr[None, :], ox[:, None] + cc[None, :]]
    ref_rows = (oy[None, :, None] + dy[:, None, None]) + rr[None, None, :]
    ref_cols = (ox[None, :, None] + dx[:, None, None]) + cc[None, None, :]
    ref_blocks = ref[ref_rows, ref_cols]
    cur_batch = np.broadcast_to(cur_blocks[None], ref_blocks.shape)
    return accel.sad(cur_batch, ref_blocks)
