"""Word-level partitioned-SIMD datapath evaluation.

The third compounding speed layer after the LUT/segment fast path
(PR 1) and the bit-parallel netlist engine (PR 4): many independent
N-bit datapath operations are packed side by side into 64-bit NumPy
lanes and evaluated with plain word arithmetic, with carry-partition
masks keeping the fields independent (the ieee754fpu ``part_mul_add``
idiom -- PartitionPoints / MaskedFullAdder).
"""

from .partsim import (
    PartitionLayout,
    bit_reverse_permutation,
    packed_absdiff,
    packed_cell_ripple,
    packed_window_add,
    sad_surface,
    sad_surface_reference,
)

__all__ = [
    "PartitionLayout",
    "bit_reverse_permutation",
    "packed_absdiff",
    "packed_cell_ripple",
    "packed_window_add",
    "sad_surface",
    "sad_surface_reference",
]
