"""Cross-layer differential verification (``repro verify``).

Public surface of the subsystem:

* :mod:`.oracle` -- the component registry: every approximate design
  with its golden reference and all equivalent evaluation paths;
* :mod:`.conformance` -- pairwise path cross-checking and the
  per-component / whole-registry drivers;
* :mod:`.metamorphic` -- implementation-independent input/output laws;
* :mod:`.statistics` -- GeAr error-model cross-validation with declared
  tolerances (the paper's Table IV as a conformance check);
* :mod:`.mutation` -- seeded-fault smoke-testing of the engine itself;
* :mod:`.report` -- budgets and result records.
"""

from .conformance import check_paths, verify_all, verify_component
from .metamorphic import LAWS, run_law
from .mutation import (
    Mutant,
    MutationReport,
    run_mutation_smoke,
    seeded_mutants,
)
from .oracle import (
    FAMILIES,
    Oracle,
    build_registry,
    get_oracle,
    oracle_names,
    resolve_components,
)
from .report import (
    BUDGETS,
    Budget,
    CheckResult,
    ConformanceReport,
    resolve_budget,
)
from .statistics import (
    GEAR_TOLERANCES,
    gear_statistics_checks,
    hetero_statistics_checks,
    verify_gear_statistics,
)

__all__ = [
    "FAMILIES",
    "Oracle",
    "build_registry",
    "get_oracle",
    "oracle_names",
    "resolve_components",
    "check_paths",
    "verify_component",
    "verify_all",
    "LAWS",
    "run_law",
    "GEAR_TOLERANCES",
    "gear_statistics_checks",
    "hetero_statistics_checks",
    "verify_gear_statistics",
    "Mutant",
    "MutationReport",
    "seeded_mutants",
    "run_mutation_smoke",
    "BUDGETS",
    "Budget",
    "CheckResult",
    "ConformanceReport",
    "resolve_budget",
]
