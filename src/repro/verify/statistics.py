"""Statistical cross-validation of the GeAr error models.

The paper derives a closed-form error probability (Sec. 4.2,
inclusion-exclusion over carry-miss events) and validates it by
simulation (Table IV).  This module turns that validation into a
conformance check with *declared tolerances*:

* ``paper`` (:func:`~repro.adders.gear_error.paper_error_probability`)
  vs ``exact`` (the dynamic program) -- both are analytically exact, so
  they must agree to double-precision rounding (``1e-9``);
* ``exhaustive`` enumeration of all ``4**N`` operand pairs vs ``exact``
  -- ground truth vs model, tolerance ``1e-12``;
* ``monte_carlo`` vs ``exact`` -- a binomial estimate, tolerated within
  ``z * sigma`` of the true rate (``z = 6``: a one-in-a-billion false
  alarm even across the full Table IV sweep);
* the full error :class:`~repro.errors.pmf.ErrorPMF` from exhaustive
  enumeration -- its ``error_rate`` must reproduce the exhaustive rate,
  its support must be non-positive (GeAr only ever *misses* carries),
  and the PMF empirically observed by the Monte Carlo stream must sit
  within a total-variation ball of the exhaustive PMF.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from ..adders.gear import GeArAdder, GeArConfig
from ..adders.gear_error import (
    exact_error_probability,
    exhaustive_error_rate,
    monte_carlo_error_rate,
    paper_error_probability,
)
from ..campaign import derive_seed
from ..errors.pmf import ErrorPMF
from .report import Budget, CheckResult, resolve_budget

__all__ = [
    "GEAR_TOLERANCES",
    "gear_statistics_checks",
    "verify_gear_statistics",
]

#: Declared agreement tolerances of the model cross-validation.
GEAR_TOLERANCES = {
    # Two exact analyses of the same process: float rounding only.
    "paper_vs_exact": 1e-9,
    # Enumeration vs dynamic program: both exact rationals in floats.
    "exhaustive_vs_exact": 1e-12,
    # Monte Carlo z-score bound (plus a 2/n floor for tiny rates).
    "mc_sigma_z": 6.0,
    # Empirical (MC) PMF vs exhaustive PMF, total variation distance.
    "pmf_tv": 0.05,
    # The paper's inclusion-exclusion expands 2**events terms; beyond
    # this the model is evaluated truncated elsewhere, so skip it here.
    "max_paper_events": 20,
}


def _check(
    config: GeArConfig, name: str, passed: bool, n_inputs: int,
    exhaustive: bool, detail: str, component: Optional[str]
) -> CheckResult:
    return CheckResult(
        component=component or f"gear/N{config.n}R{config.r}P{config.p}",
        check=f"stat:{name}",
        passed=passed,
        n_inputs=n_inputs,
        exhaustive=exhaustive,
        detail=detail,
    )


def _gear_error_pairs(config: GeArConfig) -> tuple:
    """(approx, exact) sums over all ``4**N`` operand pairs."""
    adder = GeArAdder(config)
    mask = (1 << config.n) - 1
    index = np.arange(1 << (2 * config.n), dtype=np.int64)
    a = index & mask
    b = index >> config.n
    return adder.add(a, b), a + b


def gear_statistics_checks(
    config: GeArConfig,
    budget: str | Budget = "fast",
    seed: int = 0,
    component: Optional[str] = None,
) -> List[CheckResult]:
    """Cross-validate every available error model of one configuration.

    Args:
        config: GeAr architecture under check.
        budget: Verification budget (names or instance); controls the
            Monte Carlo sample count and whether the ``4**N`` pair space
            is enumerated.
        seed: Base seed; the Monte Carlo stream seed derives from it.
        component: Registry name to stamp on the results.

    Returns:
        One :class:`CheckResult` per model pair that the budget allows.
    """
    budget = resolve_budget(budget)
    checks: List[CheckResult] = []
    exact = exact_error_probability(config)

    n_events = config.r * (config.k - 1)
    if n_events <= GEAR_TOLERANCES["max_paper_events"]:
        paper = paper_error_probability(config)
        tol = GEAR_TOLERANCES["paper_vs_exact"]
        diff = abs(paper - exact)
        checks.append(_check(
            config, "paper_vs_exact", diff <= tol, 0, True,
            f"|{paper:.12g} - {exact:.12g}| = {diff:.3g} (tol {tol:g})",
            component,
        ))

    mc_samples = budget.mc_samples
    mc = monte_carlo_error_rate(
        config, n_samples=mc_samples,
        seed=derive_seed(seed, "verify_mc", config.n, config.r, config.p),
    )
    sigma = math.sqrt(max(exact * (1.0 - exact), 0.0) / mc_samples)
    mc_tol = GEAR_TOLERANCES["mc_sigma_z"] * sigma + 2.0 / mc_samples
    mc_diff = abs(mc - exact)
    checks.append(_check(
        config, "monte_carlo_vs_exact", mc_diff <= mc_tol,
        mc_samples, False,
        f"|{mc:.6g} - {exact:.6g}| = {mc_diff:.3g} (tol {mc_tol:.3g})",
        component,
    ))

    if 2 * config.n <= budget.gear_exhaustive_bits:
        n_pairs = 1 << (2 * config.n)
        rate = exhaustive_error_rate(config)
        tol = GEAR_TOLERANCES["exhaustive_vs_exact"]
        diff = abs(rate - exact)
        checks.append(_check(
            config, "exhaustive_vs_exact", diff <= tol, n_pairs, True,
            f"|{rate:.12g} - {exact:.12g}| = {diff:.3g} (tol {tol:g})",
            component,
        ))

        approx_sums, exact_sums = _gear_error_pairs(config)
        pmf = ErrorPMF.from_pairs(approx_sums, exact_sums)
        pmf_ok = abs(pmf.error_rate - rate) <= tol
        support_ok = max(pmf.support) <= 0
        checks.append(_check(
            config, "pmf_vs_exhaustive",
            pmf_ok and support_ok, n_pairs, True,
            f"PMF {pmf.summary()}; support max {max(pmf.support)}",
            component,
        ))

        # The sampled error distribution must look like the true one.
        rng = np.random.default_rng(
            derive_seed(seed, "verify_pmf_mc", config.n, config.r, config.p)
        )
        hi = 1 << config.n
        a = rng.integers(0, hi, size=mc_samples, dtype=np.int64)
        b = rng.integers(0, hi, size=mc_samples, dtype=np.int64)
        adder = GeArAdder(config)
        mc_pmf = ErrorPMF.from_pairs(adder.add(a, b), a + b)
        tv = pmf.total_variation(mc_pmf)
        tv_tol = GEAR_TOLERANCES["pmf_tv"]
        checks.append(_check(
            config, "pmf_tv_mc_vs_exhaustive", tv <= tv_tol,
            mc_samples, False,
            f"TV = {tv:.4g} (tol {tv_tol:g})", component,
        ))
    return checks


def verify_gear_statistics(
    configs: Optional[Iterable[GeArConfig]] = None,
    budget: str | Budget = "full",
    seed: int = 0,
) -> List[CheckResult]:
    """Model-agreement checks over a configuration sweep.

    With the defaults this is the acceptance gate for the paper's
    Table IV: every valid ``N = 11`` configuration is checked
    analytic-vs-exhaustive-vs-Monte-Carlo within the declared
    tolerances.
    """
    if configs is None:
        configs = GeArConfig.all_valid(11)
    checks: List[CheckResult] = []
    for config in configs:
        checks.extend(gear_statistics_checks(config, budget, seed))
    return checks
