"""Statistical cross-validation of the GeAr error models.

The paper derives a closed-form error probability (Sec. 4.2,
inclusion-exclusion over carry-miss events) and validates it by
simulation (Table IV).  This module turns that validation into a
conformance check with *declared tolerances*:

* ``paper`` (:func:`~repro.adders.gear_error.paper_error_probability`)
  vs ``exact`` (the dynamic program) -- both are analytically exact, so
  they must agree to double-precision rounding (``1e-9``);
* ``exhaustive`` enumeration of all ``4**N`` operand pairs vs ``exact``
  -- ground truth vs model, tolerance ``1e-12``;
* ``monte_carlo`` vs ``exact`` -- a binomial estimate, tolerated within
  ``z * sigma`` of the true rate (``z = 6``: a one-in-a-billion false
  alarm even across the full Table IV sweep);
* the full error :class:`~repro.errors.pmf.ErrorPMF` from exhaustive
  enumeration -- its ``error_rate`` must reproduce the exhaustive rate,
  its support must be non-positive (GeAr only ever *misses* carries),
  and the PMF empirically observed by the Monte Carlo stream must sit
  within a total-variation ball of the exhaustive PMF;
* the PMF-convolution engine (:mod:`repro.errors.analytic`) vs all of
  the above -- its rate must match the DP to ``1e-9`` and its full PMF
  must match exhaustive enumeration in total variation.

:func:`hetero_statistics_checks` runs the same cross-validation for
heterogeneous block adders, where the analytic engine *is* the primary
model (there is no closed-form DP): analytic vs exhaustive enumeration,
analytic vs Monte Carlo within ``z * sigma``, and the support-sign
invariant for configurations that provably never overestimate.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from ..adders.gear import GeArAdder, GeArConfig
from ..adders.gear_error import (
    exact_error_probability,
    exhaustive_error_rate,
    monte_carlo_error_rate,
    paper_error_probability,
)
from ..campaign import derive_seed
from ..errors.analytic import (
    analytic_error_pmf,
    analytic_error_rate,
    exhaustive_error_pmf,
)
from ..errors.pmf import ErrorPMF
from .report import Budget, CheckResult, resolve_budget

__all__ = [
    "GEAR_TOLERANCES",
    "gear_statistics_checks",
    "hetero_statistics_checks",
    "verify_gear_statistics",
]

#: Declared agreement tolerances of the model cross-validation.
GEAR_TOLERANCES = {
    # Two exact analyses of the same process: float rounding only.
    "paper_vs_exact": 1e-9,
    # Enumeration vs dynamic program: both exact rationals in floats.
    "exhaustive_vs_exact": 1e-12,
    # Monte Carlo z-score bound (plus a 2/n floor for tiny rates).
    "mc_sigma_z": 6.0,
    # Empirical (MC) PMF vs exhaustive PMF, total variation distance.
    "pmf_tv": 0.05,
    # PMF-convolution engine vs the dynamic program: float rounding only.
    "analytic_vs_exact": 1e-9,
    # Analytic PMF vs exhaustive PMF: both exact rationals in floats.
    "analytic_pmf_tv": 1e-9,
    # The paper's inclusion-exclusion expands 2**events terms; beyond
    # this the model is evaluated truncated elsewhere, so skip it here.
    "max_paper_events": 20,
}


def _check(
    config: GeArConfig, name: str, passed: bool, n_inputs: int,
    exhaustive: bool, detail: str, component: Optional[str]
) -> CheckResult:
    return CheckResult(
        component=component or f"gear/N{config.n}R{config.r}P{config.p}",
        check=f"stat:{name}",
        passed=passed,
        n_inputs=n_inputs,
        exhaustive=exhaustive,
        detail=detail,
    )


def _gear_error_pairs(config: GeArConfig) -> tuple:
    """(approx, exact) sums over all ``4**N`` operand pairs."""
    adder = GeArAdder(config)
    mask = (1 << config.n) - 1
    index = np.arange(1 << (2 * config.n), dtype=np.int64)
    a = index & mask
    b = index >> config.n
    return adder.add(a, b), a + b


def gear_statistics_checks(
    config: GeArConfig,
    budget: str | Budget = "fast",
    seed: int = 0,
    component: Optional[str] = None,
) -> List[CheckResult]:
    """Cross-validate every available error model of one configuration.

    Args:
        config: GeAr architecture under check.
        budget: Verification budget (names or instance); controls the
            Monte Carlo sample count and whether the ``4**N`` pair space
            is enumerated.
        seed: Base seed; the Monte Carlo stream seed derives from it.
        component: Registry name to stamp on the results.

    Returns:
        One :class:`CheckResult` per model pair that the budget allows.
    """
    budget = resolve_budget(budget)
    checks: List[CheckResult] = []
    exact = exact_error_probability(config)

    analytic = analytic_error_rate(config)
    tol = GEAR_TOLERANCES["analytic_vs_exact"]
    diff = abs(analytic - exact)
    checks.append(_check(
        config, "analytic_vs_exact", diff <= tol, 0, True,
        f"|{analytic:.12g} - {exact:.12g}| = {diff:.3g} (tol {tol:g})",
        component,
    ))

    n_events = config.r * (config.k - 1)
    if n_events <= GEAR_TOLERANCES["max_paper_events"]:
        paper = paper_error_probability(config)
        tol = GEAR_TOLERANCES["paper_vs_exact"]
        diff = abs(paper - exact)
        checks.append(_check(
            config, "paper_vs_exact", diff <= tol, 0, True,
            f"|{paper:.12g} - {exact:.12g}| = {diff:.3g} (tol {tol:g})",
            component,
        ))

    mc_samples = budget.mc_samples
    mc = monte_carlo_error_rate(
        config, n_samples=mc_samples,
        seed=derive_seed(seed, "verify_mc", config.n, config.r, config.p),
    )
    sigma = math.sqrt(max(exact * (1.0 - exact), 0.0) / mc_samples)
    mc_tol = GEAR_TOLERANCES["mc_sigma_z"] * sigma + 2.0 / mc_samples
    mc_diff = abs(mc - exact)
    checks.append(_check(
        config, "monte_carlo_vs_exact", mc_diff <= mc_tol,
        mc_samples, False,
        f"|{mc:.6g} - {exact:.6g}| = {mc_diff:.3g} (tol {mc_tol:.3g})",
        component,
    ))

    if 2 * config.n <= budget.gear_exhaustive_bits:
        n_pairs = 1 << (2 * config.n)
        rate = exhaustive_error_rate(config)
        tol = GEAR_TOLERANCES["exhaustive_vs_exact"]
        diff = abs(rate - exact)
        checks.append(_check(
            config, "exhaustive_vs_exact", diff <= tol, n_pairs, True,
            f"|{rate:.12g} - {exact:.12g}| = {diff:.3g} (tol {tol:g})",
            component,
        ))

        approx_sums, exact_sums = _gear_error_pairs(config)
        pmf = ErrorPMF.from_pairs(approx_sums, exact_sums)
        pmf_ok = abs(pmf.error_rate - rate) <= tol
        support_ok = max(pmf.support) <= 0
        checks.append(_check(
            config, "pmf_vs_exhaustive",
            pmf_ok and support_ok, n_pairs, True,
            f"PMF {pmf.summary()}; support max {max(pmf.support)}",
            component,
        ))

        # The convolution engine must reproduce the *whole* exhaustive
        # distribution, not just its rate.
        analytic_pmf = analytic_error_pmf(config)
        tv = analytic_pmf.total_variation(pmf)
        tv_tol = GEAR_TOLERANCES["analytic_pmf_tv"]
        checks.append(_check(
            config, "analytic_pmf_vs_exhaustive", tv <= tv_tol,
            n_pairs, True, f"TV = {tv:.4g} (tol {tv_tol:g})", component,
        ))

        # The sampled error distribution must look like the true one.
        rng = np.random.default_rng(
            derive_seed(seed, "verify_pmf_mc", config.n, config.r, config.p)
        )
        hi = 1 << config.n
        a = rng.integers(0, hi, size=mc_samples, dtype=np.int64)
        b = rng.integers(0, hi, size=mc_samples, dtype=np.int64)
        adder = GeArAdder(config)
        mc_pmf = ErrorPMF.from_pairs(adder.add(a, b), a + b)
        tv = pmf.total_variation(mc_pmf)
        tv_tol = GEAR_TOLERANCES["pmf_tv"]
        checks.append(_check(
            config, "pmf_tv_mc_vs_exhaustive", tv <= tv_tol,
            mc_samples, False,
            f"TV = {tv:.4g} (tol {tv_tol:g})", component,
        ))
    return checks


def hetero_statistics_checks(
    config,
    budget: str | Budget = "fast",
    seed: int = 0,
    component: Optional[str] = None,
) -> List[CheckResult]:
    """Cross-validate the analytic engine on one heterogeneous config.

    For :class:`~repro.adders.hetero.HeteroGeArConfig` there is no
    closed-form DP, so the PMF-convolution engine is the model under
    test: it must agree with exhaustive enumeration (rate and full-PMF
    total variation) when the pair space fits the budget, sit within
    ``z * sigma`` of a Monte Carlo estimate always, and -- for
    configurations whose prediction depths are monotone
    (``never_overestimates``) -- produce a non-positive support.
    """
    from ..adders.hetero import HeteroGeArAdder

    budget = resolve_budget(budget)
    stamp = component or f"hetero/{config.name}"
    checks: List[CheckResult] = []
    pmf = analytic_error_pmf(config)
    rate = pmf.error_rate

    def _hcheck(name, passed, n_inputs, exhaustive, detail):
        checks.append(CheckResult(
            component=stamp, check=f"stat:{name}", passed=passed,
            n_inputs=n_inputs, exhaustive=exhaustive, detail=detail,
        ))

    if config.never_overestimates:
        worst = max(pmf.support)
        _hcheck(
            "analytic_support_sign", worst <= 0, 0, True,
            f"support max {worst} (monotone prediction depths)",
        )

    adder = HeteroGeArAdder(config)
    mc_samples = budget.mc_samples
    rng = np.random.default_rng(
        derive_seed(seed, "verify_hetero_mc", config.name)
    )
    hi = 1 << config.n
    a = rng.integers(0, hi, size=mc_samples, dtype=np.int64)
    b = rng.integers(0, hi, size=mc_samples, dtype=np.int64)
    mc = float(np.mean(adder.add(a, b) != a + b))
    sigma = math.sqrt(max(rate * (1.0 - rate), 0.0) / mc_samples)
    mc_tol = GEAR_TOLERANCES["mc_sigma_z"] * sigma + 2.0 / mc_samples
    mc_diff = abs(mc - rate)
    _hcheck(
        "monte_carlo_vs_analytic", mc_diff <= mc_tol, mc_samples, False,
        f"|{mc:.6g} - {rate:.6g}| = {mc_diff:.3g} (tol {mc_tol:.3g})",
    )

    if 2 * config.n <= budget.gear_exhaustive_bits:
        n_pairs = 1 << (2 * config.n)
        exh = exhaustive_error_pmf(config)
        tol = GEAR_TOLERANCES["exhaustive_vs_exact"]
        diff = abs(exh.error_rate - rate)
        _hcheck(
            "analytic_vs_exhaustive", diff <= tol, n_pairs, True,
            f"|{exh.error_rate:.12g} - {rate:.12g}| = {diff:.3g} "
            f"(tol {tol:g})",
        )
        tv = pmf.total_variation(exh)
        tv_tol = GEAR_TOLERANCES["analytic_pmf_tv"]
        _hcheck(
            "analytic_pmf_vs_exhaustive", tv <= tv_tol, n_pairs, True,
            f"TV = {tv:.4g} (tol {tv_tol:g})",
        )
    return checks


def verify_gear_statistics(
    configs: Optional[Iterable[GeArConfig]] = None,
    budget: str | Budget = "full",
    seed: int = 0,
) -> List[CheckResult]:
    """Model-agreement checks over a configuration sweep.

    With the defaults this is the acceptance gate for the paper's
    Table IV: every valid ``N = 11`` configuration is checked
    analytic-vs-exhaustive-vs-Monte-Carlo within the declared
    tolerances.
    """
    if configs is None:
        configs = GeArConfig.all_valid(11)
    checks: List[CheckResult] = []
    for config in configs:
        checks.extend(gear_statistics_checks(config, budget, seed))
    return checks
