"""Oracle registry: every approximate component with its golden
reference and all equivalent evaluation paths.

An :class:`Oracle` bundles what differential verification needs to know
about one library component:

* a **golden** function -- the exact reference the approximation is
  measured against (plain integer arithmetic, no library code);
* two or more **paths** -- independent evaluation routes that must be
  *bit-identical* to one another (behavioural truth-table walk, the
  PR 1 LUT/segment fast path, gate-level netlist simulation, an
  independent scalar re-implementation, ...).  Any silent drift between
  the layers shows up as a pairwise path mismatch;
* the **laws** (by name, see :mod:`.metamorphic`) the component must
  obey, and an optional inclusive ``error_cap`` on ``|path - golden|``.

:func:`build_registry` enumerates the paper's component families --
Table III cells, ripple adders, GeAr/prefix adders, 2x2 and recursive
multipliers, the SAD and low-pass-filter accelerators -- so
``repro verify all`` sweeps the entire cross-layer stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS, FullAdderSpec
from ..adders.gear import GeArAdder, GeArConfig
from ..adders.prefix import SpeculativePrefixAdder
from ..adders.ripple import ApproximateRippleAdder
from ..multipliers.mul2x2 import MULTIPLIER_2X2_NAMES, Mul2x2Spec, multiplier_2x2
from ..multipliers.recursive import RecursiveMultiplier
from .report import Budget

__all__ = [
    "Oracle",
    "build_registry",
    "get_oracle",
    "oracle_names",
    "resolve_components",
    "operand_space",
    "stratified_operands",
    "fa_value_paths",
    "ripple_paths",
    "mul2x2_value_paths",
    "gear_pure_python",
    "hetero_pure_python",
]

#: Families in registry (and CLI) order.
FAMILIES = ("fa", "ripple", "gear", "hetero", "mul2x2", "recmul", "sad",
            "filter")


@dataclass
class Oracle:
    """One component's verification contract.

    Attributes:
        name: Registry key, ``"<family>/<component>"``.
        family: One of :data:`FAMILIES`.
        description: What the component is.
        operand_bits: Bit width of each positional operand (used to size
            exhaustive sweeps); empty when ``input_gen`` supplies
            structured stimuli instead.
        golden: Exact reference ``golden(*operands) -> ndarray``.
        paths: Equivalent evaluation routes, name -> callable with the
            same signature as ``golden``.  All pairs must agree
            bit-for-bit on every input.
        laws: Names of :mod:`.metamorphic` laws this component obeys.
        error_cap: Inclusive bound on ``|path - golden|`` (``0`` for
            exact components, ``None`` when no closed-form cap applies).
        input_gen: Optional ``(n_samples, seed) -> tuple(arrays)``
            stimulus generator for structured inputs (pixel blocks,
            images).
        meta: Family-specific extras (e.g. the ``GeArConfig``).
    """

    name: str
    family: str
    description: str
    operand_bits: Tuple[int, ...]
    golden: Callable[..., np.ndarray]
    paths: Dict[str, Callable[..., np.ndarray]]
    laws: Tuple[str, ...] = ()
    error_cap: Optional[int] = None
    input_gen: Optional[Callable[[int, int], Tuple[np.ndarray, ...]]] = None
    meta: Dict = field(default_factory=dict)

    @property
    def n_input_bits(self) -> int:
        """Total input-space size in bits (0 for structured inputs)."""
        return sum(self.operand_bits)


# ----------------------------------------------------------------------
# stimulus generation
# ----------------------------------------------------------------------

def _exhaustive_operands(bits: Tuple[int, ...]) -> Tuple[np.ndarray, ...]:
    """Every input combination, decoded from one packed index sweep."""
    index = np.arange(1 << sum(bits), dtype=np.int64)
    operands = []
    offset = 0
    for width in bits:
        operands.append((index >> offset) & ((1 << width) - 1))
        offset += width
    return tuple(operands)


def stratified_operands(
    bits: Tuple[int, ...], n_samples: int, seed: int
) -> Tuple[np.ndarray, ...]:
    """Seeded stratified stimulus for input spaces too large to sweep.

    Strata (equal shares of the budget, deterministic given ``seed``):

    * corner vectors -- every all-zeros / all-ones operand combination;
    * ``uniform`` -- i.i.d. uniform operands;
    * ``sparse`` / ``dense`` -- few set / few cleared bits (carry-kill
      and carry-generate heavy patterns);
    * ``complement`` -- the second operand is the bitwise complement of
      the first (maximum-length propagate chains, the inputs that
      expose speculative-carry errors);
    * ``equal`` -- the second operand repeats the first (generate-heavy).
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = np.random.default_rng(seed)
    masks = [np.int64((1 << b) - 1) for b in bits]

    columns: List[List[np.ndarray]] = [[] for _ in bits]

    def emit(values: List[np.ndarray]) -> None:
        for column, value in zip(columns, values):
            column.append(np.asarray(value, dtype=np.int64))

    # Corner vectors: all {0, max} combinations (capped for many operands).
    n_corner = min(1 << len(bits), 64)
    for combo in range(n_corner):
        emit([
            np.asarray([mask if (combo >> i) & 1 else 0], dtype=np.int64)
            for i, mask in enumerate(masks)
        ])

    remaining = max(0, n_samples - n_corner)
    shares = [remaining // 5] * 4 + [remaining - 4 * (remaining // 5)]

    def random_sparse(width: int, size: int) -> np.ndarray:
        value = np.int64(1) << rng.integers(0, max(width, 1), size=size)
        value |= np.int64(1) << rng.integers(0, max(width, 1), size=size)
        return value & np.int64((1 << width) - 1)

    for stratum, share in zip(
        ("uniform", "sparse", "dense", "complement", "equal"), shares
    ):
        if share == 0:
            continue
        values: List[np.ndarray] = [
            rng.integers(0, (1 << b), size=share, dtype=np.int64)
            for b in bits
        ]
        if stratum == "sparse":
            values = [random_sparse(b, share) for b in bits]
        elif stratum == "dense":
            values = [
                mask & ~random_sparse(b, share)
                for b, mask in zip(bits, masks)
            ]
        elif stratum == "complement" and len(bits) >= 2:
            values[1] = (~values[0]) & masks[1]
        elif stratum == "equal" and len(bits) >= 2:
            values[1] = values[0] & masks[1]
        emit(values)

    operands = tuple(
        np.concatenate(column)[:n_samples] for column in columns
    )
    return operands


def operand_space(
    oracle: Oracle, budget: Budget, seed: int
) -> Tuple[Tuple[np.ndarray, ...], bool]:
    """Stimulus for one oracle under a budget.

    Returns:
        ``(operands, exhaustive)`` -- operand arrays (one per positional
        argument of the oracle's callables) and whether they cover the
        full input space.
    """
    if oracle.input_gen is not None:
        return oracle.input_gen(budget.n_samples, seed), False
    if oracle.n_input_bits <= budget.exhaustive_bits:
        return _exhaustive_operands(oracle.operand_bits), True
    return (
        stratified_operands(oracle.operand_bits, budget.n_samples, seed),
        False,
    )


# ----------------------------------------------------------------------
# path builders (shared with the mutation smoke-tester)
# ----------------------------------------------------------------------

def _symmetric_fa_table(spec: FullAdderSpec) -> bool:
    """True when the cell's outputs are invariant under an A/B swap."""
    return all(
        spec.table[(a << 2) | (b << 1) | c] == spec.table[(b << 2) | (a << 1) | c]
        for a in (0, 1) for b in (0, 1) for c in (0, 1)
    )


def fa_value_paths(
    spec: FullAdderSpec,
    include_netlists: bool = True,
    eval_mode: Optional[str] = None,
) -> Dict[str, Callable]:
    """Evaluation paths of a 1-bit cell, as 2-bit values ``2*cout + sum``.

    Args:
        spec: Cell under verification (possibly a mutated copy).
        include_netlists: Also build the structural and two-level-SOP
            netlist simulation paths (available only for library cells).
        eval_mode: Gate-simulation engine for the netlist paths
            (``None`` -> process default, i.e. the bit-parallel
            :mod:`repro.logic.bitsim` tape).
    """

    def table_path(a, b, cin):
        s, c = spec.evaluate(a, b, cin)
        return s.astype(np.int64) | (c.astype(np.int64) << 1)

    paths: Dict[str, Callable] = {"table": table_path}
    if include_netlists:
        for path_name, netlist in (
            ("netlist", spec.netlist()),
            ("sop", spec.sop_netlist()),
        ):
            def netlist_path(a, b, cin, _nl=netlist):
                out = _nl.evaluate({
                    "a": np.asarray(a, dtype=np.uint8),
                    "b": np.asarray(b, dtype=np.uint8),
                    "cin": np.asarray(cin, dtype=np.uint8),
                }, eval_mode=eval_mode)
                return (
                    out["sum"].astype(np.int64)
                    | (out["cout"].astype(np.int64) << 1)
                )

            paths[path_name] = netlist_path
    return paths


def ripple_paths(
    width: int,
    fa: str,
    lsbs: int,
    include_netlist: bool = True,
    eval_mode: Optional[str] = None,
) -> Dict[str, Callable]:
    """LUT / bit-loop / partitioned-SIMD / netlist paths of one adder.

    ``eval_mode`` pins the gate-simulation engine of the netlist path
    (``None`` -> process default, the bit-parallel tape) -- the
    exhaustive conformance budgets sweep ``2**17`` vectors through it.
    """
    from ..adders.netlist_builder import (
        build_ripple_adder_netlist,
        evaluate_adder_netlist,
    )

    lut = ApproximateRippleAdder(
        width, approx_fa=fa, num_approx_lsbs=lsbs,
        eval_mode="lut" if lsbs else "auto",
    )
    loop = ApproximateRippleAdder(
        width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="loop"
    )
    partsim = ApproximateRippleAdder(
        width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="partsim"
    )
    paths: Dict[str, Callable] = {
        "lut": lambda a, b, cin: _ripple_add_cin(lut, a, b, cin),
        "loop": lambda a, b, cin: _ripple_add_cin(loop, a, b, cin),
        "partsim": lambda a, b, cin: _ripple_add_cin(partsim, a, b, cin),
    }
    if include_netlist:
        netlist = build_ripple_adder_netlist(loop)
        paths["netlist"] = (
            lambda a, b, cin: evaluate_adder_netlist(
                netlist, a, b, cin, eval_mode=eval_mode
            )
        )
    return paths


def _ripple_add_cin(
    adder: ApproximateRippleAdder, a, b, cin
) -> np.ndarray:
    """`adder.add` with a *vector* carry-in (the adder API takes scalars).

    The carry-in is a primary input of the datapath, so conformance
    sweeps it like any operand: split the batch by carry value, run each
    half natively, and stitch the results back together.
    """
    cin = np.asarray(cin, dtype=np.int64)
    if cin.ndim == 0:
        return adder.add(a, b, int(cin))
    a = np.broadcast_to(np.asarray(a, dtype=np.int64), cin.shape)
    b = np.broadcast_to(np.asarray(b, dtype=np.int64), cin.shape)
    out = np.zeros(cin.shape, dtype=np.int64)
    for value in (0, 1):
        sel = cin == value
        if np.any(sel):
            out[sel] = adder.add(a[sel], b[sel], value)
    return out


def mul2x2_value_paths(
    spec: Mul2x2Spec,
    include_netlist: bool = True,
    eval_mode: Optional[str] = None,
) -> Dict[str, Callable]:
    """Truth-table and gate-level paths of a 2x2 multiplier."""

    paths: Dict[str, Callable] = {
        "table": lambda a, b: spec.multiply(a, b)
    }
    if include_netlist:
        netlist = spec.netlist()

        def netlist_path(a, b, _nl=netlist):
            a = np.asarray(a, dtype=np.int64) & 3
            b = np.asarray(b, dtype=np.int64) & 3
            out = _nl.evaluate({
                "a1": ((a >> 1) & 1).astype(np.uint8),
                "a0": (a & 1).astype(np.uint8),
                "b1": ((b >> 1) & 1).astype(np.uint8),
                "b0": (b & 1).astype(np.uint8),
            }, eval_mode=eval_mode)
            return (
                (out["p3"].astype(np.int64) << 3)
                | (out["p2"].astype(np.int64) << 2)
                | (out["p1"].astype(np.int64) << 1)
                | out["p0"].astype(np.int64)
            )

        paths["netlist"] = netlist_path
    return paths


def gear_pure_python(config: GeArConfig) -> Callable:
    """Scalar re-implementation of the GeAr window equation.

    Written against the paper's Fig. 2 description (independent L-bit
    sub-adder windows, top R bits kept), with no code shared with
    :class:`~repro.adders.gear.GeArAdder` -- a drift in either
    implementation breaks path conformance.
    """
    n, r, p, l, k = config.n, config.r, config.p, config.l, config.k
    mask_n = (1 << n) - 1
    mask_l = (1 << l) - 1
    mask_r = (1 << r) - 1

    def path(a, b):
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        a_flat = np.broadcast_to(a_arr, shape).ravel().tolist()
        b_flat = np.broadcast_to(b_arr, shape).ravel().tolist()
        out = []
        for x, y in zip(a_flat, b_flat):
            x &= mask_n
            y &= mask_n
            window = (x & mask_l) + (y & mask_l)
            result = window & mask_l
            for i in range(1, k):
                start = i * r
                window = ((x >> start) & mask_l) + ((y >> start) & mask_l)
                result |= ((window >> p) & mask_r) << (start + p)
            result |= ((window >> l) & 1) << n
            out.append(result)
        return np.asarray(out, dtype=np.int64).reshape(shape)

    return path


def hetero_pure_python(config) -> Callable:
    """Scalar re-implementation of the heterogeneous window equation.

    Written directly against the segment description (each sub-adder
    sums the ``p_i + r_i``-bit window below ``t_i + r_i`` with carry-in
    0 and keeps its top ``r_i`` bits), sharing no code with
    :class:`~repro.adders.hetero.HeteroGeArAdder` -- a drift in either
    implementation breaks path conformance.
    """
    segments = tuple(config.segments)
    n = sum(r for r, _ in segments)
    mask_n = (1 << n) - 1

    def path(a, b):
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        a_flat = np.broadcast_to(a_arr, shape).ravel().tolist()
        b_flat = np.broadcast_to(b_arr, shape).ravel().tolist()
        out = []
        for x, y in zip(a_flat, b_flat):
            x &= mask_n
            y &= mask_n
            result = 0
            base = 0
            window = 0
            for r, p in segments:
                lo = base - p
                width = p + r
                mask_w = (1 << width) - 1
                window = ((x >> lo) & mask_w) + ((y >> lo) & mask_w)
                result |= ((window >> p) & ((1 << r) - 1)) << base
                base += r
            last_width = segments[-1][0] + segments[-1][1]
            result |= ((window >> last_width) & 1) << n
            out.append(result)
        return np.asarray(out, dtype=np.int64).reshape(shape)

    return path


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def _golden_add(width: int) -> Callable:
    mask = (1 << width) - 1

    def golden(a, b, cin):
        return (
            (np.asarray(a, dtype=np.int64) & mask)
            + (np.asarray(b, dtype=np.int64) & mask)
            + np.asarray(cin, dtype=np.int64)
        )

    return golden


def _golden_mul(width: int) -> Callable:
    mask = (1 << width) - 1

    def golden(a, b):
        return (np.asarray(a, dtype=np.int64) & mask) * (
            np.asarray(b, dtype=np.int64) & mask
        )

    return golden


def _sad_input_gen(n_pixels: int, pixel_bits: int) -> Callable:
    hi = 1 << pixel_bits

    def gen(n_samples: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
        n_blocks = max(64, n_samples // 8)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, hi, size=(n_blocks, n_pixels), dtype=np.int64)
        b = rng.integers(0, hi, size=(n_blocks, n_pixels), dtype=np.int64)
        # Structured rows: identical, extreme-difference, and
        # complementary blocks (worst-case borrow chains).
        a[0], b[0] = 0, 0
        a[1], b[1] = hi - 1, 0
        a[2], b[2] = 0, hi - 1
        a[3] = rng.integers(0, hi, size=n_pixels, dtype=np.int64)
        b[3] = a[3]
        return a, b

    return gen


def _filter_input_gen(size: int, pixel_bits: int) -> Callable:
    hi = (1 << pixel_bits) - 1

    def gen(n_samples: int, seed: int) -> Tuple[np.ndarray]:
        n_images = max(8, n_samples // 256)
        rng = np.random.default_rng(seed)
        images = rng.integers(
            0, hi + 1, size=(n_images, size, size), dtype=np.int64
        )
        # Structured images: flat fields, a gradient, a checkerboard.
        images[0] = 0
        images[1] = hi
        ramp = np.linspace(0, hi, size, dtype=np.int64)
        images[2] = np.broadcast_to(ramp, (size, size))
        yy, xx = np.mgrid[0:size, 0:size]
        images[3] = ((yy + xx) % 2) * hi
        return (images,)

    return gen


def _fa_oracles() -> List[Oracle]:
    oracles = []
    for name in FULL_ADDER_NAMES:
        spec = FULL_ADDERS[name]
        cap = max(abs(m) for m in spec.error_magnitudes())
        laws = []
        if _symmetric_fa_table(spec):
            laws.append("commutativity")
        oracles.append(Oracle(
            name=f"fa/{name}",
            family="fa",
            description=spec.description,
            operand_bits=(1, 1, 1),
            golden=_golden_add(1),
            paths=fa_value_paths(spec),
            laws=tuple(laws),
            error_cap=cap,
            meta={"spec": spec},
        ))
    return oracles


def _ripple_oracles() -> List[Oracle]:
    width = 8
    variants = [("AccuFA", 0)] + [
        (name, 4) for name in FULL_ADDER_NAMES if name != "AccuFA"
    ]
    oracles = []
    for fa, lsbs in variants:
        exact = lsbs == 0
        laws = ["zero_lsb_window"]
        if exact:
            laws += ["add_identity_zero", "shift_scaling", "commutativity"]
        else:
            laws.append("lsb_truncation_cap")
            if _symmetric_fa_table(FULL_ADDERS[fa]):
                laws.append("commutativity")
        oracles.append(Oracle(
            name=f"ripple/{fa}x{lsbs}w{width}",
            family="ripple",
            description=(
                f"{width}-bit ripple adder, {lsbs} approximate "
                f"{fa} LSBs"
            ),
            operand_bits=(width, width, 1),
            golden=_golden_add(width),
            paths=ripple_paths(width, fa, lsbs),
            laws=tuple(laws),
            # The approximate segment garbles at most the low s bits and
            # the carry into bit s: |error| < 2**(lsbs + 1).
            error_cap=0 if exact else (1 << (lsbs + 1)) - 1,
            meta={"fa": fa, "lsbs": lsbs, "width": width},
        ))
    return oracles


#: GeAr configurations under differential verification.  The N=8 row is
#: exhaustively enumerable under every budget; the R=1 rows get the
#: independent speculative-prefix path; N=16 exercises sampled sweeps.
_GEAR_VERIFY_CONFIGS = (
    (8, 2, 2),
    (11, 1, 5),
    (11, 3, 2),
    (12, 4, 4),
    (16, 1, 7),
)


def _gear_oracles() -> List[Oracle]:
    oracles = []
    for n, r, p in _GEAR_VERIFY_CONFIGS:
        config = GeArConfig(n=n, r=r, p=p)
        adder = GeArAdder(config)
        paths: Dict[str, Callable] = {
            "window": adder.add,
            "partsim": GeArAdder(config, eval_mode="partsim").add,
            "pure_python": gear_pure_python(config),
        }
        if r == 1:
            prefix = SpeculativePrefixAdder(n, lookahead=p)
            paths["prefix"] = prefix.add
        oracles.append(Oracle(
            name=f"gear/N{n}R{r}P{p}",
            family="gear",
            description=f"{config.name} behavioural adder",
            operand_bits=(n, n),
            golden=lambda a, b, _m=(1 << n) - 1: (
                (np.asarray(a, dtype=np.int64) & _m)
                + (np.asarray(b, dtype=np.int64) & _m)
            ),
            paths=paths,
            laws=("commutativity", "approx_le_exact", "low_window_exact",
                  "correction_convergence"),
            error_cap=None,
            meta={"config": config},
        ))
    return oracles


#: Heterogeneous configurations under differential verification: the
#: GeAr(8,2,2) embedding (cross-family consistency with ``gear/N8R2P2``),
#: a genuinely unequal-block N=8 design, the minimal *overestimating*
#: design (prediction deeper than the previous window -- exercises the
#: positive-error branch of the analytic engine), and an N=16 design for
#: the sampled budgets.
_HETERO_VERIFY_SEGMENTS = (
    ((4, 0), (2, 2), (2, 2)),
    ((3, 0), (3, 2), (2, 2)),
    ((2, 0), (1, 1), (2, 3)),
    ((6, 0), (4, 3), (3, 2), (3, 3)),
)


def _hetero_oracles() -> List[Oracle]:
    from ..adders.hetero import HeteroGeArAdder, HeteroGeArConfig

    oracles = []
    for segments in _HETERO_VERIFY_SEGMENTS:
        config = HeteroGeArConfig(segments)
        adder = HeteroGeArAdder(config)
        n = config.n
        laws = ["commutativity", "block0_exact"]
        if config.never_overestimates:
            laws.append("approx_le_exact")
        label = "-".join(f"{r}p{p}" for r, p in segments)
        oracles.append(Oracle(
            name=f"hetero/{label}",
            family="hetero",
            description=f"{config.name} behavioural adder",
            operand_bits=(n, n),
            golden=lambda a, b, _m=(1 << n) - 1: (
                (np.asarray(a, dtype=np.int64) & _m)
                + (np.asarray(b, dtype=np.int64) & _m)
            ),
            paths={
                "window": adder.add,
                "partsim": HeteroGeArAdder(
                    config, eval_mode="partsim"
                ).add,
                "pure_python": hetero_pure_python(config),
            },
            laws=tuple(laws),
            error_cap=None,
            meta={"config": config},
        ))
    return oracles


def _mul2x2_oracles() -> List[Oracle]:
    oracles = []
    for name in MULTIPLIER_2X2_NAMES:
        spec = multiplier_2x2(name)
        oracles.append(Oracle(
            name=f"mul2x2/{name}",
            family="mul2x2",
            description=spec.description,
            operand_bits=(2, 2),
            golden=_golden_mul(2),
            paths=mul2x2_value_paths(spec),
            laws=("commutativity", "zero_annihilates"),
            error_cap=spec.max_error_value,
            meta={"spec": spec},
        ))
    return oracles


def _recmul_oracles() -> List[Oracle]:
    variants = [
        ("Acc4", 4, "AccMul", "none", "AccuFA", 0),
        ("ApxMulOur4", 4, "ApxMulOur", "all", "AccuFA", 0),
        ("ApxMulSoA4", 4, "ApxMulSoA", "all", "AccuFA", 0),
        ("ApxMulOur8", 8, "ApxMulOur", "all", "ApxFA1", 2),
    ]
    oracles = []
    for label, width, leaf, policy, adder_fa, adder_lsbs in variants:
        exact = policy == "none" and adder_lsbs == 0

        def make(mode: str) -> Callable:
            mul = RecursiveMultiplier(
                width, leaf_mul=leaf, leaf_policy=policy,
                adder_fa=adder_fa, adder_approx_lsbs=adder_lsbs,
                eval_mode=mode,
            )
            return mul.multiply

        # The 2x2 leaf tables are all symmetric, but an asymmetric cell
        # in the partial-product reduction adders breaks commutativity.
        laws = ["zero_annihilates"]
        if adder_lsbs == 0 or _symmetric_fa_table(FULL_ADDERS[adder_fa]):
            laws.append("commutativity")
        if exact:
            laws.append("shift_scaling")
        oracles.append(Oracle(
            name=f"recmul/{label}",
            family="recmul",
            description=(
                f"{width}x{width} recursive multiplier "
                f"({leaf} leaves, policy {policy})"
            ),
            operand_bits=(width, width),
            golden=_golden_mul(width),
            paths={
                "lut": make("auto"),
                "loop": make("loop"),
                "partsim": make("partsim"),
            },
            laws=tuple(laws),
            error_cap=0 if exact else None,
            meta={"width": width, "leaf": leaf, "policy": policy},
        ))
    return oracles


def _sad_oracles() -> List[Oracle]:
    n_pixels, pixel_bits = 8, 8
    variants = [("AccuSAD", "AccuFA", 0), ("ApxSAD2", "ApxFA2", 4),
                ("ApxSAD5", "ApxFA5", 4)]
    oracles = []
    for label, fa, lsbs in variants:
        exact = lsbs == 0

        def make(mode: str, _fa=fa, _lsbs=lsbs) -> Callable:
            from ..accelerators.sad import SADAccelerator

            acc = SADAccelerator(
                n_pixels, pixel_bits=pixel_bits, fa=_fa,
                approx_lsbs=_lsbs, eval_mode=mode,
            )
            return acc.sad

        laws = ["nonnegative_output"]
        if exact:
            laws += ["commutativity", "sad_self_zero"]
        oracles.append(Oracle(
            name=f"sad/{label}x{lsbs}",
            family="sad",
            description=(
                f"{n_pixels}-pixel SAD accelerator, {fa} cells on "
                f"{lsbs} LSBs"
            ),
            operand_bits=(),
            golden=lambda a, b: np.abs(
                np.asarray(a, dtype=np.int64)
                - np.asarray(b, dtype=np.int64)
            ).sum(axis=-1),
            paths={
                "fused": make("auto"),
                "loop": make("loop"),
                "partsim": make("partsim"),
            },
            laws=tuple(laws),
            error_cap=0 if exact else None,
            input_gen=_sad_input_gen(n_pixels, pixel_bits),
            meta={"fa": fa, "lsbs": lsbs, "n_pixels": n_pixels},
        ))
    return oracles


def _filter_oracles() -> List[Oracle]:
    size, pixel_bits = 12, 8
    variants = [("Accu", "AccuFA", 0), ("ApxFA1", "ApxFA1", 4)]
    oracles = []
    for label, fa, lsbs in variants:
        exact = lsbs == 0

        def make(mode: str, _fa=fa, _lsbs=lsbs) -> Callable:
            from ..accelerators.filters import LowPassFilterAccelerator

            acc = LowPassFilterAccelerator(
                fa=_fa, approx_lsbs=_lsbs, pixel_bits=pixel_bits,
                eval_mode=mode,
            )

            def path(images):
                return np.stack([acc.apply(img) for img in images])

            return path

        def golden(images):
            from ..accelerators.filters import gaussian3x3_exact

            return np.stack([gaussian3x3_exact(img) for img in images])

        oracles.append(Oracle(
            name=f"filter/{label}x{lsbs}",
            family="filter",
            description=(
                f"3x3 binomial low-pass filter, {fa} cells on "
                f"{lsbs} LSBs"
            ),
            operand_bits=(),
            golden=golden,
            paths={"fast": make("auto"), "loop": make("loop")},
            laws=("bounded_output",),
            error_cap=0 if exact else None,
            input_gen=_filter_input_gen(size, pixel_bits),
            meta={"fa": fa, "lsbs": lsbs, "pixel_bits": pixel_bits},
        ))
    return oracles


@lru_cache(maxsize=1)
def build_registry() -> Dict[str, Oracle]:
    """All component oracles, keyed ``"<family>/<component>"``."""
    registry: Dict[str, Oracle] = {}
    for builder in (_fa_oracles, _ripple_oracles, _gear_oracles,
                    _hetero_oracles, _mul2x2_oracles, _recmul_oracles,
                    _sad_oracles, _filter_oracles):
        for oracle in builder():
            if oracle.name in registry:
                raise ValueError(f"duplicate oracle {oracle.name!r}")
            registry[oracle.name] = oracle
    return registry


def oracle_names() -> List[str]:
    """Registry keys in family order."""
    return list(build_registry())


def get_oracle(name: str) -> Oracle:
    """Look up one oracle by registry key."""
    registry = build_registry()
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(registry)
        raise KeyError(f"unknown component {name!r}; known: {known}") from None


def resolve_components(selector: str) -> List[str]:
    """Component names matching a CLI selector.

    ``"all"`` selects everything; a family name (``"gear"``) selects the
    family; otherwise the selector must be an exact registry key.
    Comma-separated selectors union their matches.
    """
    registry = build_registry()
    names: List[str] = []
    for part in selector.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "all":
            matched = list(registry)
        elif part in FAMILIES:
            matched = [n for n in registry if n.startswith(part + "/")]
        elif part in registry:
            matched = [part]
        else:
            known = ", ".join(("all",) + FAMILIES)
            raise KeyError(
                f"unknown component selector {part!r}; use {known}, or an "
                f"exact name such as {next(iter(registry))!r}"
            )
        names.extend(n for n in matched if n not in names)
    if not names:
        raise KeyError(f"selector {selector!r} matched no components")
    return names
