"""Metamorphic laws: input/output relations every component must obey.

Where path conformance (:mod:`.conformance`) checks that redundant
implementations agree with *each other*, metamorphic laws check
properties that hold regardless of implementation -- commutativity,
zero/identity operands, shift scaling, LSB-truncation error caps, the
zero-LSB-window exactness of segmented ripple adders, and the GeAr
correction-iteration convergence of the paper's Fig. 3 circuitry.

Each law is a function ``law(oracle, budget, seed) -> CheckResult``
registered in :data:`LAWS`; oracles opt in by listing law names in
``Oracle.laws``.  Laws generate their own stimuli (from
:func:`~.oracle.operand_space` or from purpose-built patterns), so a
law can constrain inputs -- e.g. zeroed LSB windows -- that a generic
sweep would hit only by chance.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..adders.gear import GeArAdder
from ..adders.ripple import ApproximateRippleAdder
from .oracle import Oracle, operand_space
from .report import Budget, CheckResult

__all__ = ["LAWS", "run_law"]

LawFunction = Callable[[Oracle, Budget, int], CheckResult]

LAWS: Dict[str, LawFunction] = {}


def _law(name: str) -> Callable[[LawFunction], LawFunction]:
    def decorator(fn: LawFunction) -> LawFunction:
        LAWS[name] = fn
        return fn

    return decorator


def run_law(name: str, oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Execute one named law against an oracle."""
    try:
        law = LAWS[name]
    except KeyError:
        known = ", ".join(sorted(LAWS))
        raise KeyError(f"unknown law {name!r}; known: {known}") from None
    return law(oracle, budget, seed)


def _primary_path(oracle: Oracle) -> Callable:
    """The path a law evaluates (any; conformance proves them equal)."""
    return next(iter(oracle.paths.values()))


def _result(
    oracle: Oracle, name: str, mismatches: int, n_inputs: int,
    exhaustive: bool, detail: str = ""
) -> CheckResult:
    note = detail
    if mismatches and not note:
        note = f"{mismatches} violating inputs"
    return CheckResult(
        component=oracle.name,
        check=f"law:{name}",
        passed=mismatches == 0,
        n_inputs=n_inputs,
        exhaustive=exhaustive,
        detail=note,
    )


def _count(bad) -> int:
    return int(np.count_nonzero(bad))


@_law("commutativity")
def _commutativity(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Swapping the first two operands leaves the output unchanged.

    Applied only to components whose cell truth tables are symmetric in
    A/B (several Table III cells -- ApxFA1/3/4/5 -- are deliberately
    asymmetric and are excluded at registration).
    """
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    swapped = (operands[1], operands[0]) + tuple(operands[2:])
    bad = fn(*operands) != fn(*swapped)
    return _result(oracle, "commutativity", _count(bad),
                   len(operands[0]), exhaustive)


@_law("zero_annihilates")
def _zero_annihilates(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """``f(a, 0) == 0 == f(0, b)`` for every multiplier design."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    zero = np.zeros_like(operands[0])
    bad = (fn(operands[0], zero) != 0) | (fn(zero, operands[1]) != 0)
    return _result(oracle, "zero_annihilates", _count(bad),
                   len(operands[0]), exhaustive)


@_law("add_identity_zero")
def _add_identity_zero(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """``f(a, 0, cin=0) == a`` for exact adders."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    zero = np.zeros_like(operands[0])
    bad = fn(operands[0], zero, zero) != operands[0]
    return _result(oracle, "add_identity_zero", _count(bad),
                   len(operands[0]), exhaustive)


@_law("shift_scaling")
def _shift_scaling(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Operand shifts scale exact outputs: doubling inputs doubles the
    output (adders: both operands; multipliers: one operand).

    Only exact components are linear like this; approximate ones are
    excluded at registration (their low-bit errors are not
    shift-equivariant).
    """
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    width = oracle.operand_bits[0]
    half_mask = (1 << (width - 1)) - 1
    a = operands[0] & half_mask
    b = operands[1] & half_mask
    if len(oracle.operand_bits) >= 3:  # adder: (a, b, cin)
        zero = np.zeros_like(a)
        bad = fn(a << 1, b << 1, zero) != (fn(a, b, zero) << 1)
    else:  # multiplier: scale one operand
        bad = fn(a << 1, operands[1]) != (fn(a, operands[1]) << 1)
    return _result(oracle, "shift_scaling", _count(bad), len(a), exhaustive)


@_law("zero_lsb_window")
def _zero_lsb_window(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Zeroed LSB windows leave the accurate MSB segment exact.

    With both operands' low ``s`` bits zero and ``cin = 0``, every
    Table III cell emits carry 0 on the ``(0, 0, 0)`` row, so no carry
    enters the accurate segment and the result's bits ``>= s`` must
    match the exact sum -- even though the approximate cells may emit
    nonzero *sum* bits inside the window (ApxFA2/3 do).
    """
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    s = oracle.meta.get("lsbs", 0)
    clear = ~np.int64((1 << s) - 1)
    a = operands[0] & clear
    b = operands[1] & clear
    zero = np.zeros_like(a)
    bad = (fn(a, b, zero) >> s) != ((a + b) >> s)
    return _result(oracle, "zero_lsb_window", _count(bad), len(a), exhaustive)


@_law("lsb_truncation_cap")
def _lsb_truncation_cap(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Error magnitude stays under ``2**(k+1)`` for every truncation
    depth ``k`` up to the component's own.

    The approximate segment can only garble its ``k`` sum bits and the
    carry into bit ``k``, so ``|approx - exact| < 2**(k+1)`` must hold
    at *every* depth -- the cap (and hence worst-case error) grows
    monotonically with the number of approximated LSBs.
    """
    operands, exhaustive = operand_space(oracle, budget, seed)
    width = oracle.meta["width"]
    fa = oracle.meta["fa"]
    max_lsbs = oracle.meta["lsbs"]
    a, b = operands[0], operands[1]
    exact = a + b
    violations = 0
    for k in range(1, max_lsbs + 1):
        adder = ApproximateRippleAdder(
            width, approx_fa=fa, num_approx_lsbs=k
        )
        err = np.abs(adder.add(a, b) - exact)
        violations += _count(err >= (1 << (k + 1)))
    return _result(
        oracle, "lsb_truncation_cap", violations,
        len(a) * max_lsbs, exhaustive,
        detail=f"depths 1..{max_lsbs}" if not violations else "",
    )


@_law("approx_le_exact")
def _approx_le_exact(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """GeAr only ever *misses* carries: ``add(a, b) <= a + b``."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    a, b = operands[0], operands[1]
    bad = fn(a, b) > (a + b)
    return _result(oracle, "approx_le_exact", _count(bad), len(a), exhaustive)


@_law("low_window_exact")
def _low_window_exact(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """GeAr sub-adder 0 is exact: result bits ``[0, L)`` match ``a + b``."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    config = oracle.meta["config"]
    mask_l = (1 << config.l) - 1
    a, b = operands[0], operands[1]
    bad = (fn(a, b) & mask_l) != ((a + b) & mask_l)
    return _result(oracle, "low_window_exact", _count(bad), len(a), exhaustive)


@_law("block0_exact")
def _block0_exact(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Segment 0 of a heterogeneous block adder is exact.

    The first segment has no prediction bits (``p_0 = 0``) and a true
    carry-in of 0, so result bits ``[0, r_0)`` must match ``a + b``.
    """
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    r0 = oracle.meta["config"].segments[0][0]
    mask = (1 << r0) - 1
    a, b = operands[0], operands[1]
    bad = (fn(a, b) & mask) != ((a + b) & mask)
    return _result(oracle, "block0_exact", _count(bad), len(a), exhaustive)


@_law("correction_convergence")
def _correction_convergence(
    oracle: Oracle, budget: Budget, seed: int
) -> CheckResult:
    """The paper's error-correction circuitry converges to the exact sum.

    Three sub-properties on shared stimuli: (1) unlimited-iteration
    correction is exact; (2) it never needs more than ``k - 1`` rounds;
    (3) the number of erroneous outputs is non-increasing in the
    iteration cap (each round can only fix carries, not break them).
    """
    operands, exhaustive = operand_space(oracle, budget, seed)
    config = oracle.meta["config"]
    adder = GeArAdder(config)
    a, b = operands[0], operands[1]
    exact = a + b
    corrected, iterations = adder.add_with_correction(a, b)
    violations = _count(corrected != exact)
    violations += _count(iterations > config.k - 1)
    detail = ""
    previous = None
    for cap in range(config.k):
        capped, _ = adder.add_with_correction(a, b, max_iterations=cap)
        n_errors = _count(capped != exact)
        if previous is not None and n_errors > previous:
            violations += n_errors - previous
            detail = f"error count rose at max_iterations={cap}"
        previous = n_errors
    return _result(oracle, "correction_convergence", violations,
                   len(a), exhaustive, detail=detail)


@_law("sad_self_zero")
def _sad_self_zero(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Exact SAD of a block against itself is zero."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    bad = fn(operands[0], operands[0]) != 0
    return _result(oracle, "sad_self_zero", _count(bad),
                   operands[0].shape[0], exhaustive)


@_law("nonnegative_output")
def _nonnegative_output(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """A sum of absolute values can never be negative."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    bad = fn(*operands) < 0
    return _result(oracle, "nonnegative_output", _count(bad),
                   operands[0].shape[0], exhaustive)


@_law("bounded_output")
def _bounded_output(oracle: Oracle, budget: Budget, seed: int) -> CheckResult:
    """Filter outputs stay inside the pixel range ``[0, 2**bits - 1]``."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    fn = _primary_path(oracle)
    hi = (1 << oracle.meta.get("pixel_bits", 8)) - 1
    out = fn(*operands)
    bad = (out < 0) | (out > hi)
    return _result(oracle, "bounded_output", _count(bad),
                   operands[0].shape[0], exhaustive)
