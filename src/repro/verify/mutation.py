"""Mutation smoke-testing: prove the conformance engine catches bugs.

A verification subsystem that never fires is indistinguishable from one
that works.  This module seeds known single-site faults into sandboxed
component copies -- a flipped truth-table entry, a corrupted byte in the
PR 1 segment LUT -- and asserts that differential verification flags
*every* mutant.

Each :class:`Mutant` corrupts exactly ONE evaluation path and pairs it
with a pristine sibling path, which is precisely the bug class the
engine exists to catch: one layer silently drifting from the others.
Mutant input spaces are exhaustive under the ``mutation`` budget, so
detection is structural (the corrupted entry *will* be exercised), and a
miss is a genuine engine defect rather than sampling luck.  The pristine
netlist reference paths ride the bit-parallel compiled engine
(:mod:`repro.logic.bitsim`), so the exhaustive budgets stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS, FullAdderSpec
from ..adders.ripple import ApproximateRippleAdder
from ..multipliers.mul2x2 import MULTIPLIER_2X2_NAMES, Mul2x2Spec, multiplier_2x2
from .oracle import (
    Oracle,
    _golden_add,
    _golden_mul,
    _ripple_add_cin,
    fa_value_paths,
    mul2x2_value_paths,
)
from .report import Budget, resolve_budget

__all__ = ["Mutant", "MutationReport", "seeded_mutants", "run_mutation_smoke"]


@dataclass(frozen=True)
class Mutant:
    """One seeded fault wrapped as a verifiable oracle.

    Attributes:
        name: Unique mutant identifier.
        description: Which site was corrupted and how.
        oracle: Sandboxed oracle whose paths pair the corrupted
            implementation with a pristine sibling.
    """

    name: str
    description: str
    oracle: Oracle


def _fa_mutants(seed: int) -> List[Mutant]:
    """Two single-row truth-table flips per Table III cell.

    The flipped behavioural table is checked against the cell's pristine
    structural netlist -- mutated specs must never call ``netlist()``
    themselves (the synthesis caches are keyed by cell name).
    """
    from ..campaign import derive_seed

    mutants = []
    for cell in FULL_ADDER_NAMES:
        pristine = FULL_ADDERS[cell]
        netlist_path = fa_value_paths(pristine)["netlist"]
        rng = np.random.default_rng(derive_seed(seed, "mutant_fa", cell))
        sites = rng.choice(16, size=2, replace=False)
        for index, site in enumerate(sites):
            row, column = int(site) >> 1, int(site) & 1
            table = [list(outputs) for outputs in pristine.table]
            table[row][column] ^= 1
            mutated = FullAdderSpec(
                pristine.name,
                tuple(tuple(outputs) for outputs in table),
                pristine.description,
            )
            field = "cout" if column else "sum"
            mutants.append(Mutant(
                name=f"mutant/fa/{cell}#{index}",
                description=f"{cell}: flipped {field} of row {row}",
                oracle=Oracle(
                    name=f"mutant/fa/{cell}#{index}",
                    family="fa",
                    description=f"seeded fault: {cell} row {row} {field}",
                    operand_bits=(1, 1, 1),
                    golden=_golden_add(1),
                    paths={
                        "table": fa_value_paths(
                            mutated, include_netlists=False
                        )["table"],
                        "netlist": netlist_path,
                    },
                ),
            ))
    return mutants


def _mul2x2_mutants(seed: int) -> List[Mutant]:
    """Two single-bit product-table flips per 2x2 multiplier design."""
    from ..campaign import derive_seed

    mutants = []
    for design in MULTIPLIER_2X2_NAMES:
        pristine = multiplier_2x2(design)
        netlist_path = mul2x2_value_paths(pristine)["netlist"]
        rng = np.random.default_rng(derive_seed(seed, "mutant_mul", design))
        sites = rng.choice(64, size=2, replace=False)
        for index, site in enumerate(sites):
            row, bit = int(site) >> 2, int(site) & 3
            table = list(pristine.table)
            table[row] ^= 1 << bit
            mutated = Mul2x2Spec(
                pristine.name, tuple(table), pristine.description
            )
            mutants.append(Mutant(
                name=f"mutant/mul2x2/{design}#{index}",
                description=(
                    f"{design}: flipped product bit {bit} of row {row}"
                ),
                oracle=Oracle(
                    name=f"mutant/mul2x2/{design}#{index}",
                    family="mul2x2",
                    description=f"seeded fault: {design} row {row} bit {bit}",
                    operand_bits=(2, 2),
                    golden=_golden_mul(2),
                    paths={
                        "table": mul2x2_value_paths(
                            mutated, include_netlist=False
                        )["table"],
                        "netlist": netlist_path,
                    },
                ),
            ))
    return mutants


def _ripple_lut_mutants(seed: int) -> List[Mutant]:
    """One corrupted segment-LUT entry per approximate ripple variant.

    The shared LUT from :func:`~repro.adders.fastpath.approx_segment_lut`
    is copied before flipping (the cache hands out read-only views), so
    the fault stays sandboxed to this mutant's adder instance.
    """
    from ..campaign import derive_seed

    width, lsbs = 8, 4
    mutants = []
    for cell in FULL_ADDER_NAMES:
        if cell == "AccuFA":
            continue
        lut_adder = ApproximateRippleAdder(
            width, approx_fa=cell, num_approx_lsbs=lsbs, eval_mode="lut"
        )
        loop_adder = ApproximateRippleAdder(
            width, approx_fa=cell, num_approx_lsbs=lsbs, eval_mode="loop"
        )
        rng = np.random.default_rng(derive_seed(seed, "mutant_lut", cell))
        entry = int(rng.integers(0, lut_adder._seg_lut.size))
        bit = int(rng.integers(0, lsbs + 1))  # packed = (carry << s) | sum
        corrupted = lut_adder._seg_lut.copy()
        corrupted[entry] ^= 1 << bit
        lut_adder._seg_lut = corrupted
        mutants.append(Mutant(
            name=f"mutant/ripple/{cell}#lut",
            description=(
                f"{cell}x{lsbs}w{width}: flipped bit {bit} of segment-LUT "
                f"entry {entry}"
            ),
            oracle=Oracle(
                name=f"mutant/ripple/{cell}#lut",
                family="ripple",
                description=(
                    f"seeded fault: {cell} segment LUT entry {entry} "
                    f"bit {bit}"
                ),
                operand_bits=(width, width, 1),
                golden=_golden_add(width),
                paths={
                    "lut": lambda a, b, cin, _ad=lut_adder: (
                        _ripple_add_cin(_ad, a, b, cin)
                    ),
                    "loop": lambda a, b, cin, _ad=loop_adder: (
                        _ripple_add_cin(_ad, a, b, cin)
                    ),
                },
                meta={"fa": cell, "lsbs": lsbs, "width": width},
            ),
        ))
    return mutants


def seeded_mutants(seed: int = 0) -> List[Mutant]:
    """All seeded single-site faults (deterministic given ``seed``)."""
    return (
        _fa_mutants(seed) + _mul2x2_mutants(seed) + _ripple_lut_mutants(seed)
    )


@dataclass(frozen=True)
class MutationReport:
    """Outcome of one mutation smoke run.

    Attributes:
        results: ``(mutant_name, description, detected)`` per mutant.
    """

    results: Tuple[Tuple[str, str, bool], ...]

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def detected(self) -> int:
        return sum(1 for _, _, caught in self.results if caught)

    @property
    def missed(self) -> Tuple[str, ...]:
        """Names of mutants the engine failed to flag."""
        return tuple(
            name for name, _, caught in self.results if not caught
        )

    @property
    def detection_rate(self) -> float:
        return self.detected / self.total if self.total else 1.0

    def summary(self) -> str:
        line = (
            f"mutation smoke: {self.detected}/{self.total} seeded mutants "
            f"detected ({self.detection_rate:.0%})"
        )
        if self.missed:
            line += "; MISSED: " + ", ".join(self.missed)
        return line


def run_mutation_smoke(
    seed: int = 0, budget: str | Budget = "mutation"
) -> MutationReport:
    """Verify every seeded mutant; a mutant is *detected* when at least
    one conformance check fails on it.

    The acceptance bar is 100% detection -- see
    ``tests/verify/test_mutation_smoke.py``.
    """
    from .conformance import verify_component

    budget = resolve_budget(budget)
    results = []
    for mutant in seeded_mutants(seed):
        report = verify_component(mutant.oracle, budget, seed)
        results.append((mutant.name, mutant.description, not report.passed))
    return MutationReport(results=tuple(results))
