"""Verification budgets and reports.

The conformance engine (:mod:`.conformance`) grades every component
against a *budget* -- how hard to try -- and reduces each individual
cross-check to a :class:`CheckResult`.  A component's results are
bundled into a :class:`ConformanceReport`, which round-trips through
plain JSON so reports can travel through the campaign engine's result
cache and worker processes unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

__all__ = [
    "Budget",
    "BUDGETS",
    "resolve_budget",
    "CheckResult",
    "ConformanceReport",
]


@dataclass(frozen=True)
class Budget:
    """Effort knobs of one verification run.

    Attributes:
        name: Budget label (``"fast"``, ``"full"``, ``"mutation"``).
        exhaustive_bits: Operand spaces up to ``2**exhaustive_bits``
            inputs are swept exhaustively; larger spaces fall back to
            seeded stratified sampling.
        n_samples: Stimulus count for sampled sweeps (structured-input
            components scale this down internally).
        mc_samples: Monte Carlo samples for statistical cross-checks.
        gear_exhaustive_bits: A GeAr configuration's ``4**N`` pair space
            is enumerated (exhaustive rate + full error PMF) only while
            ``2*N`` stays within this bound.
    """

    name: str
    exhaustive_bits: int
    n_samples: int
    mc_samples: int
    gear_exhaustive_bits: int


#: Built-in budgets.  ``fast`` is the tier-1 / CLI default; ``full`` is
#: the nightly profile (exhaustive through 2**20 input spaces, all
#: Table IV widths enumerated); ``mutation`` is tuned so every
#: single-site mutant of :mod:`.mutation` falls inside an exhaustive
#: sweep and detection is structural, not probabilistic.
BUDGETS: Dict[str, Budget] = {
    "fast": Budget("fast", exhaustive_bits=16, n_samples=4096,
                   mc_samples=20_000, gear_exhaustive_bits=16),
    "full": Budget("full", exhaustive_bits=20, n_samples=65_536,
                   mc_samples=200_000, gear_exhaustive_bits=22),
    "mutation": Budget("mutation", exhaustive_bits=18, n_samples=8192,
                       mc_samples=10_000, gear_exhaustive_bits=14),
}


def resolve_budget(budget: str | Budget) -> Budget:
    """Budget instance from a name or a pass-through instance."""
    if isinstance(budget, Budget):
        return budget
    try:
        return BUDGETS[budget]
    except KeyError:
        known = ", ".join(sorted(BUDGETS))
        raise KeyError(f"unknown budget {budget!r}; known: {known}") from None


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one cross-check.

    Attributes:
        component: Registry name of the component under check.
        check: Check identifier -- ``"path:<x>~<y>"`` for pairwise path
            conformance, ``"golden:<x>"`` for error-cap checks against
            the exact reference, ``"law:<name>"`` for metamorphic laws,
            ``"stat:<name>"`` for statistical cross-validations.
        passed: Verdict.
        n_inputs: Stimulus count the verdict rests on.
        exhaustive: True when the stimulus covered the full input space
            (the verdict is then a proof, not a sample).
        detail: Free-form diagnostics (tolerances, counterexamples).
    """

    component: str
    check: str
    passed: bool
    n_inputs: int
    exhaustive: bool
    detail: str = ""

    def to_record(self) -> Dict:
        """JSON-serializable form."""
        return asdict(self)

    @classmethod
    def from_record(cls, record: Dict) -> "CheckResult":
        """Inverse of :meth:`to_record`."""
        return cls(
            component=record["component"],
            check=record["check"],
            passed=bool(record["passed"]),
            n_inputs=int(record["n_inputs"]),
            exhaustive=bool(record["exhaustive"]),
            detail=record.get("detail", ""),
        )


@dataclass(frozen=True)
class ConformanceReport:
    """All check results of one component under one budget."""

    component: str
    budget: str
    checks: Tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def n_checks(self) -> int:
        return len(self.checks)

    def failures(self) -> List[CheckResult]:
        """The failing checks, in execution order."""
        return [c for c in self.checks if not c.passed]

    def summary(self) -> str:
        """One status line, e.g. ``"fa/ApxFA2: 6 checks, 0 failed"``."""
        return (
            f"{self.component}: {self.n_checks} checks, "
            f"{len(self.failures())} failed"
        )

    def to_record(self) -> Dict:
        """JSON-serializable form (campaign cache / worker transport)."""
        return {
            "component": self.component,
            "budget": self.budget,
            "checks": [c.to_record() for c in self.checks],
        }

    @classmethod
    def from_record(cls, record: Dict) -> "ConformanceReport":
        """Inverse of :meth:`to_record`."""
        return cls(
            component=record["component"],
            budget=record["budget"],
            checks=tuple(
                CheckResult.from_record(c) for c in record["checks"]
            ),
        )
