"""Differential conformance engine.

For every component the engine:

1. generates a stimulus (exhaustive while the operand space fits the
   budget, seeded stratified sampling above -- see
   :func:`~.oracle.operand_space`);
2. evaluates **all registered paths** and cross-checks every pair for
   bit-identity;
3. checks every path against the **golden** exact reference within the
   oracle's declared error cap;
4. runs the component's **metamorphic laws** (:mod:`.metamorphic`);
5. for GeAr components, cross-validates the analytic / exhaustive /
   Monte Carlo error statistics (:mod:`.statistics`).

:func:`verify_all` fans components out through the campaign engine, so
``repro verify --workers N --cache-dir D`` gets process parallelism,
caching, and resumability for free.

Netlist-path oracles (the ``netlist``/``sop`` routes of the Table III
cells, ripple adders and 2x2 multipliers) simulate through the
bit-parallel compiled engine (:mod:`repro.logic.bitsim`, 64 stimulus
lanes per uint64 word), which is what keeps the exhaustive budgets --
``2**17`` vectors per ripple component under the nightly ``full``
profile -- cheap; ``repro.logic.bitsim.eval_mode("scalar")`` pins the
legacy reference engine instead when debugging a path divergence.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from .metamorphic import run_law
from .oracle import Oracle, get_oracle, operand_space, oracle_names
from .report import Budget, CheckResult, ConformanceReport, resolve_budget
from .statistics import gear_statistics_checks, hetero_statistics_checks

__all__ = ["check_paths", "verify_component", "verify_all"]


def _mismatch_detail(
    operands, out_a: np.ndarray, out_b: np.ndarray, limit: int = 3
) -> str:
    """First few counterexample inputs, for failure reports."""
    diff = np.nonzero(out_a != out_b)
    if not diff[0].size:
        return ""
    samples = []
    for idx in diff[0][:limit]:
        inputs = []
        for operand in operands:
            value = np.asarray(operand)[idx]
            inputs.append(
                int(value) if np.ndim(value) == 0 else value.tolist()
            )
        samples.append(tuple(inputs))
    return f"counterexamples (inputs): {samples}"


def check_paths(
    oracle: Oracle, budget: Budget, seed: int
) -> List[CheckResult]:
    """Pairwise path conformance plus golden error-cap checks."""
    operands, exhaustive = operand_space(oracle, budget, seed)
    n_inputs = int(np.asarray(operands[0]).shape[0])
    outputs = {name: fn(*operands) for name, fn in oracle.paths.items()}
    golden = oracle.golden(*operands)
    checks: List[CheckResult] = []

    for name_a, name_b in combinations(sorted(outputs), 2):
        mismatches = int(np.count_nonzero(outputs[name_a] != outputs[name_b]))
        detail = ""
        if mismatches:
            detail = (
                f"{mismatches} differing outputs; "
                + _mismatch_detail(operands, outputs[name_a], outputs[name_b])
            )
        checks.append(CheckResult(
            component=oracle.name,
            check=f"path:{name_a}~{name_b}",
            passed=mismatches == 0,
            n_inputs=n_inputs,
            exhaustive=exhaustive,
            detail=detail,
        ))

    if oracle.error_cap is not None:
        for name in sorted(outputs):
            error = np.abs(
                np.asarray(outputs[name], dtype=np.int64)
                - np.asarray(golden, dtype=np.int64)
            )
            worst = int(error.max()) if error.size else 0
            passed = worst <= oracle.error_cap
            checks.append(CheckResult(
                component=oracle.name,
                check=f"golden:{name}",
                passed=passed,
                n_inputs=n_inputs,
                exhaustive=exhaustive,
                detail=(
                    f"max |error| = {worst} (cap {oracle.error_cap})"
                    if not passed else ""
                ),
            ))
    return checks


def verify_component(
    component: str | Oracle,
    budget: str | Budget = "fast",
    seed: int = 0,
) -> ConformanceReport:
    """Run the full conformance suite on one component.

    Args:
        component: Registry name (``"gear/N8R2P2"``) or an
            :class:`Oracle` instance (the mutation smoke-tester passes
            sandboxed mutant oracles directly).
        budget: Verification budget name or instance.
        seed: Base seed; stimulus and law seeds derive from it.
    """
    from ..campaign import derive_seed

    oracle = component if isinstance(component, Oracle) else get_oracle(component)
    budget = resolve_budget(budget)
    checks: List[CheckResult] = list(check_paths(
        oracle, budget, derive_seed(seed, "verify_paths", oracle.name)
    ))
    for law_name in oracle.laws:
        checks.append(run_law(
            law_name, oracle, budget,
            derive_seed(seed, "verify_law", law_name, oracle.name),
        ))
    if oracle.family == "gear":
        checks.extend(gear_statistics_checks(
            oracle.meta["config"], budget, seed, component=oracle.name
        ))
    elif oracle.family == "hetero":
        checks.extend(hetero_statistics_checks(
            oracle.meta["config"], budget, seed, component=oracle.name
        ))
    return ConformanceReport(
        component=oracle.name, budget=budget.name, checks=tuple(checks)
    )


def verify_all(
    components: Optional[Sequence[str]] = None,
    budget: str | Budget = "fast",
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[ConformanceReport]:
    """Verify many components, optionally fanned out as a campaign.

    Named budgets route through :func:`repro.campaign.run_campaign`
    (worker fan-out, result caching, resumability -- reports are
    bit-identical for any worker count).  Ad-hoc :class:`Budget`
    instances cannot ride the cache key, so they run in-process.

    Returns:
        One report per component, in input order.
    """
    from ..campaign import CampaignTask, derive_seed, run_campaign

    if components is None:
        components = oracle_names()
    names = list(components)
    if isinstance(budget, Budget):
        reports = []
        for index, name in enumerate(names):
            reports.append(verify_component(name, budget, seed))
            if progress is not None:
                progress(index + 1, len(names))
        return reports
    tasks = [
        CampaignTask(
            kind="verify_component",
            params={"component": name, "budget": budget},
            seed=derive_seed(seed, "verify", name, budget),
        )
        for name in names
    ]
    result = run_campaign(
        tasks, n_workers=n_workers, cache_dir=cache_dir, progress=progress
    )
    return [ConformanceReport.from_record(rec) for rec in result.results]
