"""Characterization of 2x2 .. 16x16 multipliers (paper Fig. 5 / Fig. 6).

Rolls every multiplier up to the record used by the Fig. 6 bench: area
(GE), estimated power (nW), and output-quality metrics versus the exact
product.  Quality is exhaustive up to 8x8 and sampled above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..errors.metrics import ErrorMetrics, compute_error_metrics
from ..logic.simulate import estimate_power
from .mul2x2 import MULTIPLIERS_2X2, ConfigurableMul2x2, multiplier_2x2
from .recursive import RecursiveMultiplier
from .wallace import WallaceMultiplier

__all__ = [
    "MultiplierCharacterization",
    "characterize_multiplier",
    "characterize_mul2x2_family",
    "fig6_multiplier_family",
    "fig6_multiplier_tasks",
]

_EXHAUSTIVE_WIDTH_LIMIT = 8


@dataclass(frozen=True)
class MultiplierCharacterization:
    """Characterization record of one multiplier instance."""

    name: str
    width: int
    area_ge: float
    power_nw: float
    metrics: ErrorMetrics

    def as_row(self) -> Dict[str, float]:
        row = {
            "name": self.name,
            "width": self.width,
            "area_ge": round(self.area_ge, 2),
            "power_nw": round(self.power_nw, 1),
        }
        row.update({k: round(v, 6) for k, v in self.metrics.as_dict().items()})
        return row

    def to_record(self) -> Dict:
        """Full-precision JSON-serializable form (campaign cache)."""
        return {
            "name": self.name,
            "width": self.width,
            "area_ge": self.area_ge,
            "power_nw": self.power_nw,
            "metrics": self.metrics.as_dict(),
        }

    @classmethod
    def from_record(cls, record: Dict) -> "MultiplierCharacterization":
        """Inverse of :meth:`to_record`."""
        return cls(
            name=record["name"],
            width=int(record["width"]),
            area_ge=float(record["area_ge"]),
            power_nw=float(record["power_nw"]),
            metrics=ErrorMetrics.from_dict(record["metrics"]),
        )


def _operand_sweep(width: int, n_samples: int, seed: int):
    if width <= _EXHAUSTIVE_WIDTH_LIMIT:
        values = np.arange(1 << width, dtype=np.int64)
        return (
            np.repeat(values, 1 << width),
            np.tile(values, 1 << width),
        )
    rng = np.random.default_rng(seed)
    hi = 1 << width
    return (
        rng.integers(0, hi, size=n_samples, dtype=np.int64),
        rng.integers(0, hi, size=n_samples, dtype=np.int64),
    )


def _power_model_nw(mul) -> float:
    """Power roll-up proportional to switching cells.

    2x2 leaves are simulated gate-level (exhaustive stimulus); adders and
    Wallace cells reuse the per-cell energy model with a nominal 0.4
    activity, expressed as equivalent nW at the library's reference
    frequency.
    """
    if isinstance(mul, RecursiveMultiplier):
        total = 0.0
        for name, count in mul.leaf_counts().items():
            total += estimate_power(MULTIPLIERS_2X2[name].netlist()).total_nw * count
        from ..adders.characterize import adder_energy_per_op_fj

        for w in mul.adder_widths():
            # fJ/op at 100 MHz -> nW: E * f = 1e-15 * 1e8 W = 1e-7 * E nW.
            total += adder_energy_per_op_fj(mul._adder(w)) * 0.1
            total += mul._adder(w).area_ge * 2.5  # leakage
        return total
    if isinstance(mul, WallaceMultiplier):
        from ..adders.fulladder import FULL_ADDERS

        total = 1.33 * mul.width * mul.width * 2.5  # pp AND leakage
        for name, count in mul.cell_counts().items():
            base = name.removesuffix("_half")
            nl = FULL_ADDERS[base].netlist()
            total += estimate_power(nl).total_nw * count * (
                0.6 if name.endswith("_half") else 1.0
            )
        from ..adders.characterize import adder_energy_per_op_fj

        total += adder_energy_per_op_fj(mul.final_adder) * 0.1
        return total
    raise TypeError(f"no power model for {type(mul).__name__}")


def characterize_multiplier(
    mul, name: str | None = None, n_samples: int = 100_000, seed: int = 0
) -> MultiplierCharacterization:
    """Characterize any multiplier exposing ``multiply``/``width``."""
    width = mul.width
    a, b = _operand_sweep(width, n_samples, seed)
    approx = mul.multiply(a, b)
    exact = a * b
    metrics = compute_error_metrics(
        approx, exact, max_output=float((2**width - 1) ** 2)
    )
    return MultiplierCharacterization(
        name=name or mul.name,
        width=width,
        area_ge=float(mul.area_ge),
        power_nw=_power_model_nw(mul),
        metrics=metrics,
    )


def characterize_mul2x2_family() -> List[Dict[str, float]]:
    """The Fig. 5 comparison table rows (our model side).

    Returns rows for AccMul, ApxMulSoA, CfgMulSoA, ApxMulOur, CfgMulOur
    with area, power, number of error cases and maximum error value.
    """
    rows: List[Dict[str, float]] = []
    for name in ("AccMul", "ApxMulSoA", "ApxMulOur"):
        spec = multiplier_2x2(name)
        power = estimate_power(spec.netlist()).total_nw
        rows.append(
            {
                "name": name,
                "area_ge": round(spec.area_ge, 2),
                "power_nw": round(power, 1),
                "n_error_cases": spec.n_error_cases,
                "max_error_value": spec.max_error_value,
            }
        )
    for base in ("ApxMulSoA", "ApxMulOur"):
        cfg = ConfigurableMul2x2(base)
        base_power = estimate_power(cfg.base.netlist()).total_nw
        # Correction logic power scales with its share of the area.
        corr_power = base_power * cfg.correction_area_ge / max(cfg.base.area_ge, 1e-9)
        rows.append(
            {
                "name": cfg.name,
                "area_ge": round(cfg.area_ge, 2),
                "power_nw": round(base_power + corr_power, 1),
                "n_error_cases": 0,
                "max_error_value": 0,
            }
        )
    return rows


def fig6_multiplier_tasks(
    widths: Iterable[int] = (2, 4, 8, 16),
    leaf_mul: str = "ApxMulOur",
    n_samples: int = 50_000,
    seed: int = 0,
) -> List["CampaignTask"]:
    """Campaign tasks for the Fig. 6 multiplier family sweep.

    One task per (width, variant); all share the sweep seed so the
    family is characterized on one common stimulus, matching the legacy
    serial loop.
    """
    from ..campaign import CampaignTask

    tasks: List[CampaignTask] = []
    for width in widths:
        if width == 2:
            for name in ("AccMul", "ApxMulSoA", "ApxMulOur"):
                tasks.append(
                    CampaignTask(
                        kind="multiplier",
                        params={
                            "leaf_policy": "spec2x2",
                            "leaf_mul": name,
                            "name": name,
                            "n_samples": n_samples,
                        },
                        seed=seed,
                    )
                )
            continue
        variants = {
            f"AccMul{width}": {"leaf_policy": "none"},
            f"ApxMul{width}_V1(all)": {
                "leaf_mul": leaf_mul, "leaf_policy": "all",
            },
            f"ApxMul{width}_V2(low)": {
                "leaf_mul": leaf_mul, "leaf_policy": "low_half",
            },
            f"ApxMul{width}_V3(low+adders)": {
                "leaf_mul": leaf_mul,
                "leaf_policy": "low_half",
                "adder_fa": "ApxFA1",
                "adder_approx_lsbs": width // 2,
            },
        }
        for name, spec in variants.items():
            params = {
                "width": width,
                "name": name,
                "n_samples": n_samples,
                **spec,
            }
            tasks.append(
                CampaignTask(kind="multiplier", params=params, seed=seed)
            )
    return tasks


def fig6_multiplier_family(
    widths: Iterable[int] = (2, 4, 8, 16),
    leaf_mul: str = "ApxMulOur",
    n_samples: int = 50_000,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> List[MultiplierCharacterization]:
    """Accurate vs. approximate multipliers at each width (Fig. 6 data).

    Runs as a campaign: ``n_workers`` fans the variants out over a
    process pool and ``cache_dir`` reuses / checkpoints finished
    records; results are bit-identical for any worker count.
    """
    from ..campaign import run_campaign

    tasks = fig6_multiplier_tasks(
        widths, leaf_mul=leaf_mul, n_samples=n_samples, seed=seed
    )
    result = run_campaign(tasks, n_workers=n_workers, cache_dir=cache_dir)
    return [
        MultiplierCharacterization.from_record(rec) for rec in result.results
    ]
