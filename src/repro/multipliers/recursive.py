"""Multi-bit multipliers built recursively from 2x2 blocks (paper Sec. 5).

An ``N x N`` multiplier is decomposed as in lpACLib: with ``h = N/2``,

    a * b = (ah * bh) << N  +  (ah*bl + al*bh) << h  +  al * bl

where the four half-width products recurse down to 2x2 elementary
multipliers, and the partial products are summed with (possibly
approximate) multi-bit adders.  Three orthogonal approximation knobs --
the ones the paper sweeps for Fig. 6 -- are exposed:

* which 2x2 *leaf* blocks are approximate (``leaf_policy``),
* which approximate 2x2 design is used (``leaf_mul``),
* the adder cell and number of approximated LSBs in the partial-product
  summation adders (``adder_fa``, ``adder_approx_lsbs``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..adders.ripple import ApproximateRippleAdder
from .mul2x2 import Mul2x2Spec, multiplier_2x2

__all__ = ["RecursiveMultiplier", "LEAF_POLICIES", "PRODUCT_LUT_MAX_WIDTH"]

#: Widest multiplier whose full product table is compiled in
#: ``eval_mode="auto"``/``"lut"``: a width-8 table has ``2**16`` entries
#: (one 512 KiB int64 array), built lazily with a single vectorized
#: sweep of the reference recursion.
PRODUCT_LUT_MAX_WIDTH = 8

#: Named leaf policies: decide whether the 2x2 leaf at operand offsets
#: ``(a_off, b_off)`` of a ``width``-bit multiplier is approximate.
LEAF_POLICIES: Dict[str, Callable[[int, int, int], bool]] = {
    "all": lambda a_off, b_off, width: True,
    "none": lambda a_off, b_off, width: False,
    # Approximate only leaves whose product significance falls entirely
    # in the lower half of the final product (lpACLib's "Lit" variants).
    "low_half": lambda a_off, b_off, width: (a_off + b_off + 3) < width,
}


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


class RecursiveMultiplier:
    """Behavioural + physical model of a recursive NxN multiplier.

    Args:
        width: Operand width; a power of two >= 2.
        leaf_mul: Name of the approximate 2x2 design used where the
            policy selects approximation (``"ApxMulSoA"``/``"ApxMulOur"``).
        leaf_policy: ``"all"``, ``"none"``, ``"low_half"``, or a callable
            ``(a_off, b_off, width) -> bool``.
        adder_fa: Full-adder cell used in the *approximated LSBs* of the
            partial-product summation adders (a Table III name).
        adder_approx_lsbs: Number of approximated LSBs in each summation
            adder (clamped to the adder's width).
        eval_mode: Evaluation engine.  ``"auto"`` (default) and
            ``"lut"`` run the summation adders through the segment/LUT
            fast path and additionally collapse multipliers up to
            ``PRODUCT_LUT_MAX_WIDTH`` bits into one lazily-built product
            table; ``"partsim"`` additionally collapses every
            half-width-8 *quadrant* of a wider multiplier into its own
            sub-product table (keyed by operand offsets, so each table
            bakes in that quadrant's exact leaf-policy mix), replacing
            the bottom three recursion levels with four gathers per
            16-bit node; ``"loop"`` is the legacy cell-level reference.
            All modes are bit-identical.

    Example:
        >>> mul = RecursiveMultiplier(8, leaf_mul="ApxMulOur")
        >>> int(mul.multiply(255, 255)) <= 255 * 255
        True
        >>> exact = RecursiveMultiplier(8, leaf_policy="none")
        >>> int(exact.multiply(255, 255))
        65025
    """

    def __init__(
        self,
        width: int,
        leaf_mul: str = "ApxMulOur",
        leaf_policy: str | Callable[[int, int, int], bool] = "all",
        adder_fa: str = "AccuFA",
        adder_approx_lsbs: int = 0,
        eval_mode: str = "auto",
    ) -> None:
        if not _is_power_of_two(width) or width < 2:
            raise ValueError(f"width must be a power of two >= 2, got {width}")
        from ..adders.ripple import EVAL_MODES, MAX_WIDTH

        if 2 * width > MAX_WIDTH:
            # The final summation adder is 2*width bits wide and the
            # whole datapath runs on int64 reference arithmetic, so a
            # 32x32 multiplier (64-bit products) was never representable
            # -- reject it instead of silently wrapping.
            raise ValueError(
                f"width {width} needs a {2 * width}-bit summation adder, "
                f"beyond the int64-backed maximum of {MAX_WIDTH} bits"
            )

        if eval_mode not in EVAL_MODES:
            raise ValueError(
                f"eval_mode must be one of {EVAL_MODES}, got {eval_mode!r}"
            )
        self.eval_mode = eval_mode
        self._product_lut: np.ndarray | None = None
        self._quad_luts: Dict[Tuple[int, int], np.ndarray] = {}
        self.width = width
        self.leaf_mul = multiplier_2x2(leaf_mul)
        self.accurate_mul = multiplier_2x2("AccMul")
        if isinstance(leaf_policy, str):
            try:
                self.leaf_policy = LEAF_POLICIES[leaf_policy]
            except KeyError:
                known = ", ".join(LEAF_POLICIES)
                raise ValueError(
                    f"unknown leaf policy {leaf_policy!r}; known: {known}"
                ) from None
            self.leaf_policy_name = leaf_policy
        else:
            self.leaf_policy = leaf_policy
            self.leaf_policy_name = getattr(leaf_policy, "__name__", "custom")
        self.adder_fa = adder_fa
        self.adder_approx_lsbs = adder_approx_lsbs
        self._adders: Dict[int, ApproximateRippleAdder] = {}

    @property
    def name(self) -> str:
        return (
            f"RecMul{self.width}x{self.width}"
            f"[{self.leaf_mul.name}/{self.leaf_policy_name},"
            f"{self.adder_fa}x{self.adder_approx_lsbs}]"
        )

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def _adder(self, width: int) -> ApproximateRippleAdder:
        """Summation adder of the given width (cached per width)."""
        if width not in self._adders:
            # Inside the partsim multiplier the summation adders run in
            # "auto": the segment-LUT + native-add path is faster than
            # packing each partial product into partition words and the
            # modes are bit-identical anyway.
            mode = "auto" if self.eval_mode == "partsim" else self.eval_mode
            self._adders[width] = ApproximateRippleAdder(
                width,
                approx_fa=self.adder_fa,
                num_approx_lsbs=min(self.adder_approx_lsbs, width),
                eval_mode=mode,
            )
        return self._adders[width]

    def _leaf(self, a_off: int, b_off: int) -> Mul2x2Spec:
        if self.leaf_policy(a_off, b_off, self.width):
            return self.leaf_mul
        return self.accurate_mul

    def _multiply_rec(
        self, a: np.ndarray, b: np.ndarray, w: int, a_off: int, b_off: int
    ) -> np.ndarray:
        if w == 2:
            return self._leaf(a_off, b_off).multiply(a, b)
        h = w // 2
        mask = (1 << h) - 1
        al, ah = a & mask, (a >> h) & mask
        bl, bh = b & mask, (b >> h) & mask
        p_ll = self._multiply_rec(al, bl, h, a_off, b_off)
        p_lh = self._multiply_rec(al, bh, h, a_off, b_off + h)
        p_hl = self._multiply_rec(ah, bl, h, a_off + h, b_off)
        p_hh = self._multiply_rec(ah, bh, h, a_off + h, b_off + h)
        mid = self._adder(w).add(p_lh, p_hl)  # w+1 bits
        acc = self._adder(2 * w).add(p_hh << h, mid)  # aligned at << h
        return self._adder(2 * w).add(acc << h, p_ll)

    def _build_product_lut(self) -> np.ndarray:
        """Full product table, entry ``(a << width) | b``.

        Built by one vectorized sweep of the reference recursion over
        every operand pair, so it is bit-identical to the recursion by
        construction.
        """
        n = 1 << self.width
        a = np.repeat(np.arange(n, dtype=np.int64), n)
        b = np.tile(np.arange(n, dtype=np.int64), n)
        lut = self._multiply_rec(a, b, self.width, 0, 0)
        lut.setflags(write=False)
        return lut

    def _quad_lut(self, a_off: int, b_off: int) -> np.ndarray:
        """Sub-product table of the 8x8 quadrant at ``(a_off, b_off)``.

        Entry ``(a << 8) | b`` holds the quadrant's 16-bit sub-product.
        Built by one vectorized sweep of the reference recursion *at
        those offsets*, so each table is bit-identical to the recursion
        it replaces -- including the per-offset leaf-policy decisions.
        """
        key = (a_off, b_off)
        if key not in self._quad_luts:
            n = 1 << 8
            a = np.repeat(np.arange(n, dtype=np.int64), n)
            b = np.tile(np.arange(n, dtype=np.int64), n)
            lut = self._multiply_rec(a, b, 8, a_off, b_off)
            lut.setflags(write=False)
            self._quad_luts[key] = lut
        return self._quad_luts[key]

    def _multiply_partsim(
        self, a: np.ndarray, b: np.ndarray, w: int, a_off: int, b_off: int
    ) -> np.ndarray:
        """Recursion with 16-bit nodes evaluated as four quadrant gathers."""
        h = w // 2
        mask = (1 << h) - 1
        al, ah = a & mask, (a >> h) & mask
        bl, bh = b & mask, (b >> h) & mask
        if h == 8:
            p_ll = self._quad_lut(a_off, b_off)[(al << 8) | bl]
            p_lh = self._quad_lut(a_off, b_off + h)[(al << 8) | bh]
            p_hl = self._quad_lut(a_off + h, b_off)[(ah << 8) | bl]
            p_hh = self._quad_lut(a_off + h, b_off + h)[(ah << 8) | bh]
        else:
            p_ll = self._multiply_partsim(al, bl, h, a_off, b_off)
            p_lh = self._multiply_partsim(al, bh, h, a_off, b_off + h)
            p_hl = self._multiply_partsim(ah, bl, h, a_off + h, b_off)
            p_hh = self._multiply_partsim(ah, bh, h, a_off + h, b_off + h)
        mid = self._adder(w).add(p_lh, p_hl)  # w+1 bits
        acc = self._adder(2 * w).add(p_hh << h, mid)  # aligned at << h
        return self._adder(2 * w).add(acc << h, p_ll)

    def multiply(self, a, b) -> np.ndarray:
        """Approximate product of two ``width``-bit unsigned operands."""
        mask = (1 << self.width) - 1
        a = np.asarray(a, dtype=np.int64) & mask
        b = np.asarray(b, dtype=np.int64) & mask
        if self.eval_mode != "loop" and self.width <= PRODUCT_LUT_MAX_WIDTH:
            if self._product_lut is None:
                self._product_lut = self._build_product_lut()
            return np.asarray(
                self._product_lut[(a << self.width) | b], dtype=np.int64
            )
        if self.eval_mode == "partsim":
            return self._multiply_partsim(a, b, self.width, 0, 0)
        return self._multiply_rec(a, b, self.width, 0, 0)

    # ------------------------------------------------------------------
    # structural roll-ups
    # ------------------------------------------------------------------
    def leaf_counts(self) -> Dict[str, int]:
        """Number of 2x2 leaves per design name."""
        counts: Dict[str, int] = {}

        def rec(w: int, a_off: int, b_off: int) -> None:
            if w == 2:
                name = self._leaf(a_off, b_off).name
                counts[name] = counts.get(name, 0) + 1
                return
            h = w // 2
            rec(h, a_off, b_off)
            rec(h, a_off, b_off + h)
            rec(h, a_off + h, b_off)
            rec(h, a_off + h, b_off + h)

        rec(self.width, 0, 0)
        return counts

    def adder_widths(self) -> List[int]:
        """Widths of every summation adder instance in the tree."""
        widths: List[int] = []

        def rec(w: int) -> None:
            if w == 2:
                return
            widths.extend([w, 2 * w, 2 * w])
            for _ in range(4):
                rec(w // 2)

        rec(self.width)
        return sorted(widths)

    @property
    def area_ge(self) -> float:
        """Total area: 2x2 leaf netlists + summation-adder cells."""
        from .mul2x2 import MULTIPLIERS_2X2

        total = 0.0
        for name, count in self.leaf_counts().items():
            total += MULTIPLIERS_2X2[name].area_ge * count
        for w in self.adder_widths():
            total += self._adder(w).area_ge
        return total

    @property
    def delay_ps(self) -> float:
        """Critical path: one leaf plus the adder chain of each level."""
        delay = max(self.leaf_mul.delay_ps, self.accurate_mul.delay_ps)
        w = self.width
        while w > 2:
            delay += self._adder(w).delay_ps + 2 * self._adder(2 * w).delay_ps
            w //= 2
        return delay

    def __repr__(self) -> str:
        return f"RecursiveMultiplier({self.name})"
