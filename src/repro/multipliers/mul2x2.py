"""2x2 accurate and approximate multipliers (paper Fig. 5).

Three elementary multipliers:

* ``AccMul``     -- exact 2x2 multiplier (4-bit product).
* ``ApxMulSoA``  -- the state-of-the-art design of Kulkarni et al. [15]:
  the product is encoded in 3 bits, so only ``3 x 3`` is wrong
  (7 instead of 9).  One error case, maximum error value 2.
* ``ApxMulOur``  -- the paper's design: the product MSB is re-used as the
  LSB (``out3 = out0 = a1 & a0 & b1 & b0``).  ``3 x 3`` becomes exact,
  while ``1 x 1``, ``1 x 3`` and ``3 x 1`` are each off by 1.  Three
  error cases, maximum error value 1.

Configurable versions (``CfgMulSoA``, ``CfgMulOur``) add a mode input
that restores exactness: the SoA design needs a corrective *addition*
(+2 on the ``3 x 3`` case), while the paper's design only needs to
re-derive the true LSB (``a0 & b0``) and multiplex it in -- the "simple
correction via an inverter" that makes ``CfgMulOur`` cheaper than
``CfgMulSoA``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from ..logic.netlist import Netlist
from ..logic.synth import synthesize_truth_table

__all__ = [
    "Mul2x2Spec",
    "MULTIPLIERS_2X2",
    "MULTIPLIER_2X2_NAMES",
    "multiplier_2x2",
    "ConfigurableMul2x2",
]


def _accurate_table() -> Tuple[int, ...]:
    return tuple((i >> 2) * (i & 3) for i in range(16))


def _soa_table() -> Tuple[int, ...]:
    """Kulkarni: out2 = a1 b1, out1 = a1 b0 | a0 b1, out0 = a0 b0."""
    rows = []
    for i in range(16):
        a, b = i >> 2, i & 3
        a1, a0 = a >> 1, a & 1
        b1, b0 = b >> 1, b & 1
        rows.append(
            ((a1 & b1) << 2) | ((a1 & b0 | a0 & b1) << 1) | (a0 & b0)
        )
    return tuple(rows)


def _our_table() -> Tuple[int, ...]:
    """Paper design: accurate product with out0 tied to out3."""
    rows = []
    for i in range(16):
        a, b = i >> 2, i & 3
        product = a * b
        msb = (product >> 3) & 1  # = a1 a0 b1 b0
        rows.append((product & 0b1110) | msb)
    return tuple(rows)


@dataclass(frozen=True)
class Mul2x2Spec:
    """Behavioural + structural model of a 2x2 multiplier.

    Attributes:
        name: ``"AccMul"``, ``"ApxMulSoA"`` or ``"ApxMulOur"``.
        table: 4-bit product for each input row ``(a << 2) | b``.
        description: Design intent.
    """

    name: str
    table: Tuple[int, ...]
    description: str

    def __post_init__(self) -> None:
        if len(self.table) != 16:
            raise ValueError(f"{self.name}: 2x2 table needs 16 rows")
        # The 2x2 leaf multiply is the recursion's innermost hot path:
        # build the LUT once instead of re-materializing it per call.
        lut = np.asarray(self.table, dtype=np.int64)
        lut.setflags(write=False)
        object.__setattr__(self, "_lut", lut)

    @property
    def lut(self) -> np.ndarray:
        """Product LUT indexed by ``(a << 2) | b``."""
        return self._lut

    def multiply(self, a, b) -> np.ndarray:
        """Vectorized 2-bit x 2-bit product (operands masked to 2 bits)."""
        a = np.asarray(a, dtype=np.int64) & 3
        b = np.asarray(b, dtype=np.int64) & 3
        return self.lut[(a << 2) | b]

    # -- quality -----------------------------------------------------------
    def error_cases(self) -> List[Tuple[int, int]]:
        """Operand pairs whose product deviates from the exact one."""
        exact = _accurate_table()
        return [
            (i >> 2, i & 3) for i in range(16) if self.table[i] != exact[i]
        ]

    @property
    def n_error_cases(self) -> int:
        return len(self.error_cases())

    @property
    def max_error_value(self) -> int:
        exact = _accurate_table()
        return max(abs(self.table[i] - exact[i]) for i in range(16))

    # -- structural --------------------------------------------------------
    def netlist(self) -> Netlist:
        """Gate-level netlist with inputs ``a1 a0 b1 b0``, outputs ``p3..p0``."""
        return _mul_netlist(self.name)

    @property
    def area_ge(self) -> float:
        return self.netlist().area_ge

    @property
    def delay_ps(self) -> float:
        return self.netlist().delay_ps()


@lru_cache(maxsize=None)
def _mul_netlist(name: str) -> Netlist:
    inputs = ["a1", "a0", "b1", "b0"]
    if name == "AccMul":
        nl = Netlist(name, inputs=inputs, outputs=["p3", "p2", "p1", "p0"])
        nl.add_gate("AND2", ["a0", "b0"], "p0")
        nl.add_gate("AND2", ["a0", "b1"], "w01")
        nl.add_gate("AND2", ["a1", "b0"], "w10")
        nl.add_gate("AND2", ["a1", "b1"], "w11")
        nl.add_gate("XOR2", ["w01", "w10"], "p1")
        nl.add_gate("AND2", ["w01", "w10"], "c1")
        nl.add_gate("XOR2", ["w11", "c1"], "p2")
        nl.add_gate("AND2", ["w11", "c1"], "p3")
        nl.validate()
        return nl
    if name == "ApxMulSoA":
        # 3-bit output design of Kulkarni et al.; p3 tied low.
        nl = Netlist(name, inputs=inputs, outputs=["p3", "p2", "p1", "p0"])
        nl.add_gate("AND2", ["a0", "b0"], "p0")
        nl.add_gate("AND2", ["a0", "b1"], "w01")
        nl.add_gate("AND2", ["a1", "b0"], "w10")
        nl.add_gate("OR2", ["w01", "w10"], "p1")
        nl.add_gate("AND2", ["a1", "b1"], "p2")
        nl.add_gate("WIRE", ["GND"], "p3")
        nl.validate()
        return nl
    if name == "ApxMulOur":
        # Accurate structure with the carry path collapsed: the only case
        # with a p3/c1 interaction is 3x3, so p3 = p0 = a1 a0 b1 b0 and
        # p2 reduces to a1 b1 AND NOT(a0 b0) on the error-free rows.
        nl = Netlist(name, inputs=inputs, outputs=["p3", "p2", "p1", "p0"])
        nl.add_gate("AND2", ["a0", "b0"], "w00")
        nl.add_gate("AND2", ["a1", "b1"], "w11")
        nl.add_gate("AND2", ["w00", "w11"], "msb")
        nl.add_gate("WIRE", ["msb"], "p3")
        nl.add_gate("WIRE", ["msb"], "p0")
        nl.add_gate("AND2", ["a0", "b1"], "w01")
        nl.add_gate("AND2", ["a1", "b0"], "w10")
        nl.add_gate("XOR2", ["w01", "w10"], "p1")
        nl.add_gate("INV", ["msb"], "msb_n")
        nl.add_gate("AND2", ["w11", "msb_n"], "p2")
        nl.validate()
        return nl
    raise KeyError(f"no netlist for multiplier {name!r}")


MULTIPLIERS_2X2: Dict[str, Mul2x2Spec] = {
    "AccMul": Mul2x2Spec("AccMul", _accurate_table(), "exact 2x2 multiplier"),
    "ApxMulSoA": Mul2x2Spec(
        "ApxMulSoA",
        _soa_table(),
        "Kulkarni 3-bit approximate multiplier (3x3 -> 7)",
    ),
    "ApxMulOur": Mul2x2Spec(
        "ApxMulOur",
        _our_table(),
        "paper's multiplier: product MSB tied to LSB (max error 1)",
    ),
}

MULTIPLIER_2X2_NAMES: Tuple[str, ...] = tuple(MULTIPLIERS_2X2)


def multiplier_2x2(name: str) -> Mul2x2Spec:
    """Look up a 2x2 multiplier spec by name."""
    try:
        return MULTIPLIERS_2X2[name]
    except KeyError:
        known = ", ".join(MULTIPLIER_2X2_NAMES)
        raise KeyError(
            f"unknown 2x2 multiplier {name!r}; known: {known}"
        ) from None


class ConfigurableMul2x2:
    """Accuracy-configurable 2x2 multiplier (``CfgMulSoA`` / ``CfgMulOur``).

    In approximate mode the underlying approximate table is used; in
    accurate mode the correction logic restores the exact product.  The
    correction-cost asymmetry of Fig. 5 is modelled structurally: the SoA
    design corrects ``3 x 3`` by *adding* 2 (a half-adder chain on p1/p2
    plus the regenerated p3), while the paper's design only regenerates
    the true LSB ``a0 & b0`` and gates the tied-MSB path.

    Example:
        >>> m = ConfigurableMul2x2("ApxMulOur")
        >>> int(m.multiply(3, 1))              # approximate mode
        2
        >>> int(m.multiply(3, 1, accurate=True))
        3
    """

    def __init__(self, base: str) -> None:
        if base not in ("ApxMulSoA", "ApxMulOur"):
            raise ValueError(
                f"configurable version exists for ApxMulSoA/ApxMulOur, got {base!r}"
            )
        self.base = multiplier_2x2(base)
        self.exact = multiplier_2x2("AccMul")

    @property
    def name(self) -> str:
        return "CfgMulSoA" if self.base.name == "ApxMulSoA" else "CfgMulOur"

    def multiply(self, a, b, accurate: bool = False) -> np.ndarray:
        """Product in the selected mode (vectorized)."""
        if accurate:
            return self.exact.multiply(a, b)
        return self.base.multiply(a, b)

    @property
    def correction_area_ge(self) -> float:
        """Area of the mode-correction logic on top of the base design."""
        if self.base.name == "ApxMulSoA":
            # Regenerate p3 (AND of partial products) and add +2 into
            # p1/p2: an AND stage plus a 2-bit incrementer (XOR + AND +
            # XOR) gated by the mode signal.
            extra = ["AND2", "AND2", "XOR2", "AND2", "XOR2", "MUX2"]
        else:
            # Regenerate the exact LSB and select it in accurate mode;
            # p3 needs only the inverse of the gating condition.
            extra = ["INV", "MUX2"]
        from ..logic.cells import cell

        return float(sum(cell(c).area_ge for c in extra))

    @property
    def area_ge(self) -> float:
        """Total configurable-multiplier area (base + correction)."""
        return self.base.area_ge + self.correction_area_ge

    def __repr__(self) -> str:
        return f"ConfigurableMul2x2({self.base.name!r})"
