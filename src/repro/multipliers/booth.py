"""Radix-4 Booth multiplier with approximate low-order partial products.

The paper's survey covers approximate multipliers beyond the 2x2
composition, citing designs that approximate the partial-product array
of a Booth recoding (e.g. Farshchi et al. [33]).  This module implements
a bit-true **signed** radix-4 (modified) Booth multiplier:

* the multiplier operand is recoded into ``ceil((W+1)/2)`` digits in
  ``{-2, -1, 0, +1, +2}``;
* each digit selects a partial product ``d * a`` (shift/negate of the
  multiplicand);
* partial products are accumulated by (possibly approximate) adders.

Approximation knobs:

* ``truncate_digits`` -- drop the lowest Booth partial products entirely
  (their total weight is bounded, so the error interval is known);
* ``adder_fa`` / ``adder_approx_lsbs`` -- approximate cells in the
  accumulation adders, as everywhere else in the library.

This adds signed multiplication to the library (the recursive/Wallace
builders are unsigned), which the DCT accelerator and any filter with
negative coefficients need.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..adders.ripple import ApproximateRippleAdder

__all__ = ["BoothMultiplier", "booth_recode"]


def booth_recode(value: np.ndarray, width: int) -> List[np.ndarray]:
    """Radix-4 Booth digits of a signed ``width``-bit operand.

    Args:
        value: Array of signed integers in ``[-2**(width-1),
            2**(width-1) - 1]``.
        width: Operand width in bits.

    Returns:
        List of digit arrays (values in ``{-2, -1, 0, 1, 2}``), least
        significant digit first; ``sum(d_i * 4**i) == value``.
    """
    value = np.asarray(value, dtype=np.int64)
    unsigned = value & ((1 << width) - 1)
    n_digits = (width + 1) // 2
    digits: List[np.ndarray] = []
    padded = unsigned << 1  # append the implicit y_{-1} = 0
    for i in range(n_digits):
        window = (padded >> (2 * i)) & 0b111
        # Classic radix-4 table over (y_{2i+1}, y_{2i}, y_{2i-1}).
        digit = np.select(
            [window == 0, window == 1, window == 2, window == 3,
             window == 4, window == 5, window == 6, window == 7],
            [0, 1, 1, 2, -2, -1, -1, 0],
        )
        digits.append(digit.astype(np.int64))
    # Sign correction for odd widths handled by the final digit covering
    # the sign bit; verify via reconstruction in tests.
    return digits


class BoothMultiplier:
    """Signed radix-4 Booth multiplier with approximation knobs.

    Example:
        >>> mul = BoothMultiplier(8)
        >>> int(mul.multiply(-100, 77))
        -7700
    """

    def __init__(
        self,
        width: int,
        truncate_digits: int = 0,
        adder_fa: str = "AccuFA",
        adder_approx_lsbs: int = 0,
    ) -> None:
        if width < 2 or width % 2:
            raise ValueError(f"width must be even and >= 2, got {width}")
        n_digits = (width + 1) // 2
        if not 0 <= truncate_digits <= n_digits:
            raise ValueError(
                f"truncate_digits must be in [0, {n_digits}], got "
                f"{truncate_digits}"
            )
        self.width = width
        self.n_digits = n_digits
        self.truncate_digits = truncate_digits
        # Accumulator covers the full 2W-bit signed product.
        self.accumulator = ApproximateRippleAdder(
            2 * width + 2,
            approx_fa=adder_fa,
            num_approx_lsbs=min(adder_approx_lsbs, 2 * width + 2),
        )
        self.adder_approx_lsbs = adder_approx_lsbs

    @property
    def name(self) -> str:
        return (
            f"Booth{self.width}x{self.width}"
            f"[trunc={self.truncate_digits},"
            f"{self.accumulator.approx_fa.name}x{self.adder_approx_lsbs}]"
        )

    def _to_signed(self, value, width: int) -> np.ndarray:
        value = np.asarray(value, dtype=np.int64) & ((1 << width) - 1)
        sign = value >> (width - 1)
        return value - (sign << width)

    def _acc_add(self, total: np.ndarray, term: np.ndarray) -> np.ndarray:
        """Two's-complement accumulate through the approximate adder."""
        w = self.accumulator.width
        mask = (1 << w) - 1
        raw = self.accumulator.add_modular(total & mask, term & mask)
        return raw - ((raw >> (w - 1)) << w)

    def multiply(self, a, b) -> np.ndarray:
        """Signed product of two ``width``-bit operands.

        Operands are interpreted as two's-complement ``width``-bit
        values (plain negative Python ints are accepted).
        """
        a_signed = self._to_signed(a, self.width)
        b_signed = self._to_signed(b, self.width)
        digits = booth_recode(b_signed, self.width)
        shape = np.broadcast_shapes(a_signed.shape, b_signed.shape)
        total = np.zeros(shape, dtype=np.int64)
        for i, digit in enumerate(digits):
            if i < self.truncate_digits:
                continue
            partial = digit * a_signed << (2 * i)
            total = self._acc_add(total, partial)
        return total

    def truncation_error_bound(self) -> int:
        """Worst-case |error| from the dropped Booth digits alone."""
        max_a = 1 << (self.width - 1)  # |a| <= 2**(W-1)
        bound = 0
        for i in range(self.truncate_digits):
            bound += 2 * max_a << (2 * i)  # |digit| <= 2
        return bound

    def __repr__(self) -> str:
        return f"BoothMultiplier({self.name})"
