"""Wallace-tree multiplier with approximate column compression.

The paper points to Wallace-tree construction as the standard way of
summing partial products (Sec. 5) and cites the approximate Wallace-tree
multiplier of Bhardwaj et al. [17].  This module implements:

* exact partial-product generation (``a_i AND b_j``),
* column-wise Wallace reduction using full/half adders, where columns of
  significance below ``approx_columns`` use an approximate full-adder
  cell from Table III (half adders are derived from the same cell with
  ``cin = 0``),
* optional truncation (dropping the lowest partial-product columns
  entirely, the most aggressive approximation of [17]),
* a final carry-propagate addition through a configurable multi-bit
  (possibly approximate) adder.

Cell counts are tracked during construction so area/power roll-ups are
consistent with the synthesized 1-bit cells.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..adders.fulladder import FULL_ADDERS, FullAdderSpec, full_adder
from ..adders.ripple import ApproximateRippleAdder

__all__ = ["WallaceMultiplier"]


class WallaceMultiplier:
    """Approximate Wallace-tree multiplier.

    Args:
        width: Operand width in bits (>= 2; any width, not only powers
            of two).
        compress_fa: Table III cell used in approximated columns.
        approx_columns: Columns with significance below this use the
            approximate cell for compression.
        truncate_columns: Columns with significance below this are
            dropped entirely (truncated multiplier); must be <=
            ``approx_columns`` semantics-wise but is independent.
        final_adder_fa: Cell for the approximated LSBs of the final
            carry-propagate adder.
        final_adder_approx_lsbs: Number of approximated LSBs in the
            final adder.

    Example:
        >>> exact = WallaceMultiplier(8)
        >>> int(exact.multiply(200, 100))
        20000
    """

    def __init__(
        self,
        width: int,
        compress_fa: str = "AccuFA",
        approx_columns: int = 0,
        truncate_columns: int = 0,
        final_adder_fa: str = "AccuFA",
        final_adder_approx_lsbs: int = 0,
    ) -> None:
        if width < 2:
            raise ValueError(f"width must be >= 2, got {width}")
        if approx_columns < 0 or truncate_columns < 0:
            raise ValueError("column counts must be non-negative")
        self.width = width
        self.compress_fa = full_adder(compress_fa)
        self.accurate_fa = FULL_ADDERS["AccuFA"]
        self.approx_columns = approx_columns
        self.truncate_columns = truncate_columns
        self.product_width = 2 * width
        self.final_adder = ApproximateRippleAdder(
            self.product_width,
            approx_fa=final_adder_fa,
            num_approx_lsbs=min(final_adder_approx_lsbs, self.product_width),
        )
        #: cell usage recorded by the last reduction (name -> count);
        #: structure is input-independent so one dry run fixes it.
        self._cell_counts: Dict[str, int] | None = None

    @property
    def name(self) -> str:
        return (
            f"Wallace{self.width}x{self.width}"
            f"[{self.compress_fa.name}<{self.approx_columns},"
            f"trunc<{self.truncate_columns}]"
        )

    def _column_cell(self, column: int) -> FullAdderSpec:
        if column < self.approx_columns:
            return self.compress_fa
        return self.accurate_fa

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def multiply(self, a, b) -> np.ndarray:
        """Approximate product of two ``width``-bit unsigned operands."""
        mask = (1 << self.width) - 1
        a = np.asarray(a, dtype=np.int64) & mask
        b = np.asarray(b, dtype=np.int64) & mask
        shape = np.broadcast_shapes(a.shape, b.shape)
        a = np.broadcast_to(a, shape)
        b = np.broadcast_to(b, shape)

        counts: Dict[str, int] = {}
        columns: List[List[np.ndarray]] = [
            [] for _ in range(self.product_width)
        ]
        for i in range(self.width):
            for j in range(self.width):
                col = i + j
                if col < self.truncate_columns:
                    continue
                columns[col].append(((a >> i) & 1) * ((b >> j) & 1))

        # Wallace reduction: compress every column with >2 bits.
        while any(len(col) > 2 for col in columns):
            nxt: List[List[np.ndarray]] = [
                [] for _ in range(self.product_width + 1)
            ]
            for c, col in enumerate(columns):
                cell = self._column_cell(c)
                idx = 0
                while len(col) - idx >= 3:
                    s, carry = cell.evaluate(col[idx], col[idx + 1], col[idx + 2])
                    counts[cell.name] = counts.get(cell.name, 0) + 1
                    nxt[c].append(s.astype(np.int64))
                    nxt[c + 1].append(carry.astype(np.int64))
                    idx += 3
                if len(col) - idx == 2:
                    s, carry = cell.evaluate(
                        col[idx], col[idx + 1], np.zeros(shape, dtype=np.int64)
                    )
                    counts[cell.name + "_half"] = (
                        counts.get(cell.name + "_half", 0) + 1
                    )
                    nxt[c].append(s.astype(np.int64))
                    nxt[c + 1].append(carry.astype(np.int64))
                    idx += 2
                if len(col) - idx == 1:
                    nxt[c].append(col[idx])
            if nxt[self.product_width]:
                # Carries past the product width are dropped (cannot occur
                # for exact structure, may for approximate cells).
                nxt = nxt[: self.product_width]
            else:
                nxt = nxt[: self.product_width]
            columns = nxt

        if self._cell_counts is None:
            self._cell_counts = counts

        # Final carry-propagate addition of the two remaining rows.
        row0 = np.zeros(shape, dtype=np.int64)
        row1 = np.zeros(shape, dtype=np.int64)
        for c, col in enumerate(columns):
            if len(col) >= 1:
                row0 |= col[0] << c
            if len(col) == 2:
                row1 |= col[1] << c
        return self.final_adder.add_modular(row0, row1)

    # ------------------------------------------------------------------
    # structural roll-ups
    # ------------------------------------------------------------------
    def cell_counts(self) -> Dict[str, int]:
        """Compression-cell usage (runs a dry reduction if needed)."""
        if self._cell_counts is None:
            self.multiply(np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64))
        assert self._cell_counts is not None
        return dict(self._cell_counts)

    @property
    def area_ge(self) -> float:
        """Partial products + compression cells + final adder area."""
        and_area = 1.33 * (self.width * self.width)  # AND2 per pp bit
        total = and_area
        for name, count in self.cell_counts().items():
            base = name.removesuffix("_half")
            # A half adder costs roughly 60% of its full adder.
            factor = 0.6 if name.endswith("_half") else 1.0
            total += FULL_ADDERS[base].area_ge * factor * count
        return total + self.final_adder.area_ge

    def __repr__(self) -> str:
        return f"WallaceMultiplier({self.name})"
