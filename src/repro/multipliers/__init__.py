"""Approximate multipliers: 2x2 elementary blocks (Fig. 5), recursive
multi-bit composition (Fig. 6), and Wallace-tree construction."""

from .characterize import (
    MultiplierCharacterization,
    characterize_mul2x2_family,
    characterize_multiplier,
    fig6_multiplier_family,
)
from .mul2x2 import (
    MULTIPLIER_2X2_NAMES,
    MULTIPLIERS_2X2,
    ConfigurableMul2x2,
    Mul2x2Spec,
    multiplier_2x2,
)
from .booth import BoothMultiplier, booth_recode
from .recursive import LEAF_POLICIES, RecursiveMultiplier
from .wallace import WallaceMultiplier

__all__ = [
    "MultiplierCharacterization",
    "characterize_mul2x2_family",
    "characterize_multiplier",
    "fig6_multiplier_family",
    "MULTIPLIER_2X2_NAMES",
    "MULTIPLIERS_2X2",
    "ConfigurableMul2x2",
    "Mul2x2Spec",
    "multiplier_2x2",
    "LEAF_POLICIES",
    "RecursiveMultiplier",
    "WallaceMultiplier",
    "BoothMultiplier",
    "booth_recode",
]
