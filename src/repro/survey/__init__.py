"""The paper's survey tables (Table I / II) as structured, queryable data."""

from .taxonomy import (
    TABLE_I,
    TABLE_II,
    Category,
    Layer,
    Technique,
    by_category,
    by_layer,
    category_layer_matrix,
    cross_layer_techniques,
)

__all__ = [
    "TABLE_I",
    "TABLE_II",
    "Category",
    "Layer",
    "Technique",
    "by_category",
    "by_layer",
    "category_layer_matrix",
    "cross_layer_techniques",
]
