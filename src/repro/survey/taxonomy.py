"""The paper's survey taxonomy as queryable structured data.

Table I catalogues approximate-computing techniques per layer of the
hardware/software stack; Table II classifies them into five approximation
categories.  Both are reproduced here as data so the survey tables can be
regenerated, filtered and cross-referenced programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

__all__ = [
    "Layer",
    "Category",
    "Technique",
    "TABLE_I",
    "TABLE_II",
    "by_layer",
    "by_category",
    "cross_layer_techniques",
    "category_layer_matrix",
]


class Layer(str, Enum):
    """Abstraction layer of the hardware/software stack."""

    SOFTWARE = "software"
    ARCHITECTURAL = "architectural"
    HW_CIRCUIT = "hw/circuit"


class Category(str, Enum):
    """The five approximation classes of Table II."""

    SELECTIVE = "selective approximation"
    TIMING = "timing relaxation"
    FUNCTIONAL = "functional approximation"
    DOMAIN_SPECIFIC = "domain specific approximation"
    DATA = "data/information approximation"


#: Table II: category -> the paper's one-line definition.
TABLE_II: Dict[Category, str] = {
    Category.SELECTIVE: (
        "Analysis of software code or instructions to suggest a certain "
        "accuracy mode for a part of code"
    ),
    Category.TIMING: (
        "Relaxing of synchronization, timing and handshaking constraints "
        "to reduce control overhead"
    ),
    Category.FUNCTIONAL: (
        "An approximate alternative of an algorithm that improves "
        "area/power performance"
    ),
    Category.DOMAIN_SPECIFIC: (
        "Leveraging the domain specific knowledge for approximations in "
        "applications and their algorithms"
    ),
    Category.DATA: (
        "Use of unreliable memories, load value approximation, data "
        "truncation, data decimation, etc."
    ),
}


@dataclass(frozen=True)
class Technique:
    """One row of Table I.

    Attributes:
        layer: Stack layer the technique operates at.
        category: Approximation class (Table II).
        references: Citation keys from the paper's bibliography.
        description: Short description of the technique.
        motivation: Primary benefit the technique targets.
        case_study: Application(s) evaluated in the cited work.
        cross_layer: Whether the technique depends on other layers.
    """

    layer: Layer
    category: Category
    references: Tuple[str, ...]
    description: str
    motivation: str
    case_study: str
    cross_layer: bool


TABLE_I: Tuple[Technique, ...] = (
    Technique(
        Layer.SOFTWARE,
        Category.SELECTIVE,
        ("[38]",),
        "Adaptively skips prediction-function executions with data/"
        "operation decimation depending on video properties",
        "improved thermal profile",
        "HEVC video encoder",
        cross_layer=False,
    ),
    Technique(
        Layer.SOFTWARE,
        Category.SELECTIVE,
        ("[20]", "[21]"),
        "Automatically identifies error-resilient code that can be "
        "skipped (code perforation) keeping error within bounds",
        "improved performance",
        "Recognition, Mining and Synthesis (RMS)",
        cross_layer=False,
    ),
    Technique(
        Layer.SOFTWARE,
        Category.TIMING,
        ("[22]", "[23]"),
        "Relaxes synchronization in parallel programs, exploiting "
        "iterative-convergence properties to drop dependencies",
        "improved performance",
        "Recognition and Mining (RM)",
        cross_layer=False,
    ),
    Technique(
        Layer.SOFTWARE,
        Category.DOMAIN_SPECIFIC,
        ("[25]", "[26]"),
        "Domain knowledge drives approximate (sometimes scalable) models",
        "improved performance",
        "machine learning applications",
        cross_layer=False,
    ),
    Technique(
        Layer.SOFTWARE,
        Category.FUNCTIONAL,
        ("[24]",),
        "Approximatable code segments replaced with trained neural "
        "networks (parrot transformation) on NPU-augmented processors",
        "improved performance",
        "fft, inversek2j, jmeint, jpeg, kmeans, sobel",
        cross_layer=True,
    ),
    Technique(
        Layer.SOFTWARE,
        Category.DATA,
        ("[39]",),
        "Approximate cache: error correction shut down in MLC-STTRAM "
        "caches guided by video properties",
        "power efficiency",
        "HEVC video encoder",
        cross_layer=True,
    ),
    Technique(
        Layer.SOFTWARE,
        Category.DATA,
        ("[27]", "[28]"),
        "Approximation in data storage: unequal error protection and "
        "hybrid SRAM cells under voltage scaling",
        "power/memory efficiency",
        "video processing / vision applications",
        cross_layer=True,
    ),
    Technique(
        Layer.ARCHITECTURAL,
        Category.SELECTIVE,
        ("[4]", "[29]"),
        "Chosen instructions or code segments execute in approximate "
        "mode on approximate hardware",
        "improved performance",
        "fft, sor, mc, smm, lu, zxing, jmeint, imagefill, raytracer, RMS",
        cross_layer=True,
    ),
    Technique(
        Layer.ARCHITECTURAL,
        Category.DOMAIN_SPECIFIC,
        ("[30]", "[31]"),
        "Domain knowledge drives application-specific accelerators",
        "power efficiency",
        "RMS and vision applications",
        cross_layer=False,
    ),
    Technique(
        Layer.ARCHITECTURAL,
        Category.FUNCTIONAL,
        ("[7]", "[8]", "[9]", "[11]", "[13]", "[14]", "[32]", "[33]"),
        "Truncation of circuit critical paths to increase performance "
        "at the cost of accuracy",
        "improved performance",
        "DSP, vision/image processing, RMS applications",
        cross_layer=False,
    ),
    Technique(
        Layer.HW_CIRCUIT,
        Category.TIMING,
        ("[34]", "[35]"),
        "Deliberate voltage over-scaling for power efficiency",
        "power efficiency",
        "RMS and vision applications",
        cross_layer=False,
    ),
    Technique(
        Layer.HW_CIRCUIT,
        Category.FUNCTIONAL,
        ("[12]",),
        "Hardware complexity reduced using approximate equivalent "
        "models with fewer transistors",
        "power efficiency",
        "RMS and vision applications",
        cross_layer=False,
    ),
)


def by_layer(layer: Layer) -> List[Technique]:
    """All Table I techniques at one layer."""
    return [t for t in TABLE_I if t.layer == layer]


def by_category(category: Category) -> List[Technique]:
    """All Table I techniques in one Table II category."""
    return [t for t in TABLE_I if t.category == category]


def cross_layer_techniques() -> List[Technique]:
    """Techniques with dependencies on other layers."""
    return [t for t in TABLE_I if t.cross_layer]


def category_layer_matrix() -> Dict[Category, Dict[Layer, int]]:
    """Counts of techniques per (category, layer) cell.

    Exposes the paper's observation that "most of the approximation
    schemes may be applied at multiple layers".
    """
    matrix: Dict[Category, Dict[Layer, int]] = {
        category: {layer: 0 for layer in Layer} for category in Category
    }
    for technique in TABLE_I:
        matrix[technique.category][technique.layer] += 1
    return matrix
