"""Command-line interface for the approximate-component library.

The subcommands mirror the workflows a library user runs most:

* ``repro characterize-adders`` -- Table III-style characterization of
  the 1-bit cells and multi-bit ripple adders.
* ``repro explore-gear`` -- Table IV / Fig. 4 design-space sweep with
  constraint queries.
* ``repro characterize-multipliers`` -- Fig. 5 / Fig. 6 multiplier
  characterization.
* ``repro campaign`` -- the named characterization campaigns (Table IV,
  Fig. 6, ripple/SAD/filter families) through the parallel, cached,
  resumable campaign engine.
* ``repro resilience`` -- transient-fault sweeps across the stack
  (logic cells, GeAr datapath, SAD/filter/DCT accelerators), with
  QosGuard graceful degradation and hardened campaign execution
  (timeouts, retries, quarantine).
* ``repro verify`` -- cross-layer differential verification: every
  component's evaluation paths cross-checked against each other, its
  golden reference, metamorphic laws, and (for GeAr) the analytic /
  exhaustive / Monte Carlo error models.
* ``repro analytic`` -- exact PMF-convolution error analysis of block
  adders: per-configuration statistics for homogeneous GeAr and
  heterogeneous segment layouts, and ``--sweep`` for the heterogeneous
  Pareto front compared against the homogeneous Table IV front.
* ``repro encode`` -- the HEVC-lite case study with a chosen SAD
  variant (Fig. 9 data points).
* ``repro serve`` -- approximate-compute-as-a-service: the asyncio
  HTTP/JSON front-end over the campaign engine (multi-tenant
  weighted-fair queueing, shared content-addressed result store, QoS
  admission against the analytic predictor, SSE job streams).

The sweep subcommands accept ``--workers`` (process-pool fan-out) and
``--cache-dir`` (result cache: warm starts and kill/resume).  Results
are bit-identical for any worker count.

Example:
    $ python -m repro.cli explore-gear --width 11 --min-accuracy 90
    $ python -m repro.cli campaign table4 --model monte-carlo \\
          --workers 4 --cache-dir .campaign-cache
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Sequence

from .accelerators.sad import (
    SAD_VARIANT_CELLS,
    SADAccelerator,
    sad_family_tasks,
)
from .adders.characterize import (
    characterize_adder,
    characterize_ripple_family,
    ripple_family_tasks,
)
from .adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from .campaign import CampaignStats, run_campaign
from .characterization.report import format_records, records_to_csv
from .dse.explorer import explore_gear_space_campaign, gear_space_tasks
from .dse.selection import select_max_accuracy, select_min_area
from .logic.simulate import estimate_power
from .media.synthetic import moving_sequence
from .multipliers.characterize import (
    characterize_mul2x2_family,
    fig6_multiplier_family,
    fig6_multiplier_tasks,
)
from .video.codec import HevcLiteEncoder

__all__ = ["main", "build_parser"]


def _print(records: List[dict], columns, as_csv: bool, title: str) -> None:
    if as_csv:
        print(records_to_csv(records, columns))
    else:
        print(format_records(records, columns=columns, title=title))


def _progress_printer(enabled: bool):
    """Stderr task counter for long campaigns (None when disabled)."""
    if not enabled:
        return None

    def progress(done: int, total: int) -> None:
        end = "\n" if done == total else ""
        print(f"\r  campaign: {done}/{total} tasks", end=end,
              file=sys.stderr, flush=True)

    return progress


def _print_stats(stats: CampaignStats) -> None:
    print(f"campaign stats: {stats.summary()}", file=sys.stderr)


def _normalized_model(model: str) -> str:
    return model.replace("-", "_")


def _cmd_characterize_adders(args: argparse.Namespace) -> int:
    rows = []
    for name in FULL_ADDER_NAMES:
        fa = FULL_ADDERS[name]
        netlist = fa.netlist()
        rows.append(
            {
                "adder": name,
                "error_cases": fa.n_error_cases,
                "area_ge": round(netlist.area_ge, 2),
                "power_nw": round(estimate_power(netlist).total_nw, 1),
                "delay_ps": round(netlist.delay_ps(), 1),
            }
        )
    _print(rows, None, args.csv, "1-bit full adders (Table III)")
    if args.width:
        records = characterize_ripple_family(
            args.width, approx_lsb_counts=tuple(args.lsbs),
            n_workers=args.workers, cache_dir=args.cache_dir,
        )
        family_rows = [r.as_row() for r in records]
        _print(
            family_rows,
            ["name", "area_ge", "error_rate", "mean_error_distance",
             "max_error_distance"],
            args.csv,
            f"\n{args.width}-bit ripple adders",
        )
    return 0


def _cmd_explore_gear(args: argparse.Namespace) -> int:
    result = explore_gear_space_campaign(
        args.width,
        model=_normalized_model(args.model),
        n_samples=args.samples,
        seed=args.seed,
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        progress=_progress_printer(args.workers > 1),
    )
    records = list(result.results)
    if args.workers > 1 or args.cache_dir:
        _print_stats(result.stats)
    for record in records:
        record["accuracy_percent"] = round(record["accuracy_percent"], 3)
    _print(
        records,
        ["r", "p", "k", "l", "accuracy_percent", "lut_count", "delay_ps"],
        args.csv,
        f"GeAr design space, N={args.width} (Table IV)",
    )
    best = select_max_accuracy(records)
    print(f"\nmax accuracy: {best['name']} ({best['accuracy_percent']}%)")
    if args.min_accuracy is not None:
        try:
            pick = select_min_area(records, args.min_accuracy)
            print(
                f"min area with >= {args.min_accuracy}% accuracy: "
                f"{pick['name']} ({pick['lut_count']} LUTs)"
            )
        except ValueError as exc:
            print(f"constraint infeasible: {exc}", file=sys.stderr)
            return 1
    return 0


def _cmd_characterize_multipliers(args: argparse.Namespace) -> int:
    _print(
        characterize_mul2x2_family(),
        None,
        args.csv,
        "2x2 multipliers (Fig. 5)",
    )
    if args.widths:
        records = fig6_multiplier_family(
            widths=tuple(args.widths), n_samples=args.samples,
            n_workers=args.workers, cache_dir=args.cache_dir,
        )
        rows = [r.as_row() for r in records]
        _print(
            rows,
            ["name", "width", "area_ge", "power_nw", "error_rate",
             "normalized_med"],
            args.csv,
            "\nmulti-bit multipliers (Fig. 6)",
        )
    return 0


def _cmd_characterize_sad(args: argparse.Namespace) -> int:
    from .accelerators.sad import characterize_sad_family

    records = characterize_sad_family(
        n_pixels=args.pixels,
        lsb_counts=tuple(args.lsbs),
        n_samples=args.samples,
        n_workers=args.workers,
        cache_dir=args.cache_dir,
    )
    _print(records, None, args.csv,
           f"SAD accelerator family ({args.pixels} pixels)")
    return 0


def _cmd_luts(args: argparse.Namespace) -> int:
    from .adders.netlist_builder import build_ripple_adder_netlist
    from .adders.ripple import ApproximateRippleAdder
    from .logic.mapping import map_to_luts

    rows = []
    for name in FULL_ADDER_NAMES:
        mapping = map_to_luts(FULL_ADDERS[name].netlist(), k=args.k)
        rows.append(
            {
                "component": name,
                "luts": mapping.n_luts,
                "luts_dup": mapping.n_luts_duplicated,
                "depth": mapping.depth,
            }
        )
    if args.width:
        for cell, lsbs in (("AccuFA", 0), ("ApxFA1", args.width // 2),
                           ("ApxFA5", args.width // 2)):
            adder = ApproximateRippleAdder(
                args.width, approx_fa=cell, num_approx_lsbs=lsbs
            )
            netlist = build_ripple_adder_netlist(adder)
            mapping = map_to_luts(netlist, k=args.k)
            rows.append(
                {
                    "component": adder.name,
                    "luts": mapping.n_luts,
                    "luts_dup": mapping.n_luts_duplicated,
                    "depth": mapping.depth,
                }
            )
    _print(rows, None, args.csv, f"{args.k}-LUT mapping estimates")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    if args.variant not in SAD_VARIANT_CELLS:
        known = ", ".join(SAD_VARIANT_CELLS)
        print(f"unknown variant {args.variant!r}; known: {known}",
              file=sys.stderr)
        return 2
    frames = moving_sequence(
        n_frames=args.frames, size=args.size, seed=args.seed,
        noise_sigma=args.noise,
    )
    encoder = HevcLiteEncoder(search_range=args.search_range, qp=args.qp)
    baseline = encoder.encode(frames, SADAccelerator(n_pixels=64))
    cell = SAD_VARIANT_CELLS[args.variant]
    accelerator = SADAccelerator(
        n_pixels=64, fa=cell, approx_lsbs=args.approx_lsbs
    )
    result = encoder.encode(frames, accelerator)
    print(f"baseline (AccuSAD): {baseline.total_bits} bits, "
          f"{baseline.psnr_db:.2f} dB")
    print(f"{args.variant} ({args.approx_lsbs} LSBs): "
          f"{result.total_bits} bits "
          f"({result.bitrate_increase_percent(baseline):+.2f}%), "
          f"{result.psnr_db:.2f} dB, "
          f"SAD energy {accelerator.energy_per_op_fj:.0f} fJ/op "
          f"(exact: {SADAccelerator(n_pixels=64).energy_per_op_fj:.0f})")
    return 0


#: Output columns per named campaign (records are flattened first).
_CAMPAIGN_COLUMNS = {
    "table4": ["r", "p", "k", "l", "accuracy_percent", "lut_count",
               "area_ge"],
    "fig6": ["name", "width", "area_ge", "power_nw", "error_rate",
             "normalized_med"],
    "ripple": ["name", "width", "area_ge", "error_rate",
               "mean_error_distance", "max_error_distance"],
    "sad": ["name", "fa", "approx_lsbs", "mean_error_distance",
            "mean_relative_error", "energy_fj"],
    "filter": ["image", "fa", "approx_lsbs", "ssim", "area_ge"],
}


def _campaign_tasks(args: argparse.Namespace) -> List:
    """Task list for the named campaign of ``repro campaign``."""
    from .campaign import CampaignTask
    from .media.synthetic import standard_images

    name = args.campaign
    if name == "table4":
        return gear_space_tasks(
            args.width or 11, model=_normalized_model(args.model),
            n_samples=args.samples or 200_000, seed=args.seed,
        )
    if name == "fig6":
        return fig6_multiplier_tasks(
            widths=tuple(args.widths), n_samples=args.samples or 50_000,
            seed=args.seed,
        )
    if name == "ripple":
        return ripple_family_tasks(
            args.width or 8, approx_lsb_counts=tuple(args.lsbs),
            n_samples=args.samples or 100_000, seed=args.seed,
        )
    if name == "sad":
        return sad_family_tasks(
            n_pixels=args.pixels, lsb_counts=tuple(args.lsbs),
            n_samples=args.samples or 3000, seed=args.seed,
        )
    if name == "filter":
        images = sorted(standard_images(size=64))
        return [
            CampaignTask(
                kind="filter_ssim",
                params={"image": image, "fa": cell, "approx_lsbs": lsbs,
                        "size": 64},
                seed=args.seed,
            )
            for image in images
            for cell in ("ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5")
            for lsbs in args.lsbs
        ]
    raise ValueError(f"unknown campaign {name!r}")


def _flatten_record(record: dict) -> dict:
    """Lift nested ``metrics`` dicts into top-level report columns."""
    if not isinstance(record, dict):
        return {"result": record}
    flat = {k: v for k, v in record.items() if k != "metrics"}
    metrics = record.get("metrics")
    if isinstance(metrics, dict):
        flat.update(
            {k: round(v, 6) if isinstance(v, float) else v
             for k, v in metrics.items()}
        )
    return flat


def _cmd_campaign(args: argparse.Namespace) -> int:
    tasks = _campaign_tasks(args)
    result = run_campaign(
        tasks,
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        progress=_progress_printer(not args.csv),
    )
    rows = [_flatten_record(record) for record in result.results]
    for row in rows:
        for key, value in row.items():
            if isinstance(value, float):
                row[key] = round(value, 6)
    _print(
        rows,
        _CAMPAIGN_COLUMNS[args.campaign],
        args.csv,
        f"campaign {args.campaign!r} "
        f"({len(tasks)} tasks, seed {args.seed})",
    )
    _print_stats(result.stats)
    return 0


#: Output columns per resilience sweep workload (rate is prepended).
_RESILIENCE_COLUMNS = {
    "cell": ["rate", "cell", "n_vectors", "n_flips", "n_output_errors",
             "error_rate"],
    "gear": ["rate", "name", "n_samples", "error_rate",
             "mean_error_distance"],
    "sad": ["rate", "fa", "n_blocks", "n_fault_affected",
            "block_error_rate", "qos_stage", "qos_exact"],
    "filter": ["rate", "image", "fa", "ssim", "pixel_error_rate"],
    "dct": ["rate", "n_blocks", "mean_coeff_error", "block_error_rate"],
}


def _resilience_row(record: dict) -> dict:
    """Flatten one sweep record for the report table."""
    row = {k: v for k, v in record.items()
           if k not in ("plan", "qos", "flips_per_site")}
    qos = record.get("qos")
    if isinstance(qos, dict):
        row["qos_stage"] = qos.get("final_stage")
        row["qos_exact"] = qos.get("exact_match")
    return row


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .resilience.sweep import run_fault_sweep

    extra = {}
    if args.workload == "sad":
        extra["qos"] = not args.no_qos
        extra["fa"] = args.fa
        extra["approx_lsbs"] = args.approx_lsbs
    if args.workload == "filter":
        extra["image"] = args.image
    result = run_fault_sweep(
        args.workload,
        args.rates,
        seed=args.seed,
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        timeout_s=args.timeout,
        max_attempts=args.retries + 1,
        progress=_progress_printer(not args.csv),
        **extra,
    )
    rows = [_resilience_row(r) for r in result.results if r is not None]
    for row in rows:
        for key, value in row.items():
            if isinstance(value, float):
                row[key] = round(value, 6)
    _print(
        rows,
        _RESILIENCE_COLUMNS[args.workload],
        args.csv,
        f"transient-fault sweep {args.workload!r} "
        f"({len(args.rates)} rates, seed {args.seed})",
    )
    _print_stats(result.stats)
    if not result.ok:
        report = result.failure_report()
        for failure in report["failures"]:
            print(f"QUARANTINED {failure['kind']} {failure['key'][:12]}: "
                  f"{failure['attempts'][-1]['message']}", file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify.conformance import verify_all
    from .verify.oracle import resolve_components

    try:
        components = resolve_components(args.component)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    reports = verify_all(
        components,
        budget=args.budget,
        seed=args.seed,
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        progress=_progress_printer(not args.csv),
    )
    rows = [
        {
            "component": report.component,
            "budget": report.budget,
            "checks": report.n_checks,
            "failed": len(report.failures()),
            "status": "ok" if report.passed else "FAIL",
        }
        for report in reports
    ]
    _print(
        rows,
        ["component", "budget", "checks", "failed", "status"],
        args.csv,
        f"differential verification ({len(reports)} components, "
        f"budget {args.budget!r}, seed {args.seed})",
    )
    failed = [report for report in reports if not report.passed]
    for report in failed:
        for check in report.failures():
            print(
                f"FAIL {check.component} {check.check}: {check.detail}",
                file=sys.stderr,
            )
    total_checks = sum(report.n_checks for report in reports)
    print(
        f"verify: {len(reports) - len(failed)}/{len(reports)} components "
        f"passed ({total_checks} checks)",
        file=sys.stderr,
    )
    return 1 if failed else 0


def _analytic_configs(args: argparse.Namespace) -> List:
    """Parse ``--config N,R,P`` and ``--segments r:p,...`` specs."""
    from .adders.hetero import HeteroGeArConfig

    configs = []
    for spec in args.config:
        parts = spec.split(",")
        if len(parts) != 3:
            raise ValueError(f"--config expects N,R,P, got {spec!r}")
        n, r, p = (int(part) for part in parts)
        configs.append(HeteroGeArConfig.from_gear_params(n, r, p))
    for spec in args.segments:
        configs.append(HeteroGeArConfig.from_string(spec))
    return configs


def _segments_str(segments) -> str:
    """Comma-free segment spelling (CSV-safe), e.g. ``4p0-2p2-2p2``."""
    return "-".join(f"{r}p{p}" for r, p in segments)


def _cmd_analytic(args: argparse.Namespace) -> int:
    from .dse.hetero import explore_hetero_space, hetero_front_report
    from .errors.analytic import analytic_summary

    if args.sweep:
        records = explore_hetero_space(
            args.width,
            max_segments=args.max_segments,
            max_p=args.max_p,
            seed=args.seed,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
            progress=_progress_printer(not args.csv),
        )
        report = hetero_front_report(records)
        rows = [
            {
                "segments": _segments_str(record["segments"]),
                "source": record["source"],
                "k": record["k"],
                "lut_count": record["lut_count"],
                "accuracy_percent": round(record["accuracy_percent"], 6),
                "error_rate": round(record["error_rate"], 6),
                "nmed": round(record["nmed"], 9),
            }
            for record in report["front"]
        ]
        _print(
            rows,
            ["segments", "source", "k", "lut_count", "accuracy_percent",
             "error_rate", "nmed"],
            args.csv,
            f"heterogeneous Pareto front, N={args.width} "
            f"({len(records)} exact design points)",
        )
        verdict = ("matches or dominates" if report["matches_or_dominates"]
                   else "DOES NOT DOMINATE")
        print(
            f"\nvs homogeneous Table IV front "
            f"({len(report['gear_front'])} points): {verdict}; "
            f"{len(report['strict_wins'])} strict heterogeneous wins"
        )
        for win in report["strict_wins"]:
            print(
                f"  {_segments_str(win['segments'])}: "
                f"{win['lut_count']} LUTs, "
                f"{win['accuracy_percent']:.6f}% accuracy"
            )
        return 0

    try:
        configs = _analytic_configs(args)
    except ValueError as exc:
        print(f"bad configuration spec: {exc}", file=sys.stderr)
        return 2
    if not configs:
        print("nothing to analyse: pass --config N,R,P and/or "
              "--segments r:p,... (or --sweep)", file=sys.stderr)
        return 2
    from .adders.hetero import HeteroGeArAdder

    rows = []
    for config in configs:
        adder = HeteroGeArAdder(config)
        summary = analytic_summary(config)
        rows.append(
            {
                "segments": _segments_str(config.segments),
                "n": config.n,
                "k": config.k,
                "error_rate": round(summary["error_rate"], 9),
                "accuracy_percent": round(summary["accuracy_percent"], 6),
                "mean": round(summary["mean"], 6),
                "med": round(summary["med"], 6),
                "nmed": round(summary["nmed"], 9),
                "max_abs": int(summary["max_abs"]),
                "lut_count": adder.lut_count,
                "delay_ps": round(adder.delay_ps, 1),
            }
        )
    _print(
        rows,
        ["segments", "n", "k", "error_rate", "accuracy_percent", "mean",
         "med", "nmed", "max_abs", "lut_count", "delay_ps"],
        args.csv,
        "exact analytic error statistics (PMF convolution)",
    )
    return 0


def _parse_tenant_spec(spec: str):
    """``name:weight[:rate[:burst[:backlog[:quota]]]]`` -> TenantConfig.

    ``quota`` caps the tenant's stored result bytes (429
    ``quota_exceeded`` past it); empty or omitted means unlimited.
    """
    from .service.tenants import TenantConfig

    parts = spec.split(":")
    if not parts[0]:
        raise ValueError(f"tenant spec needs a name: {spec!r}")
    name = parts[0]
    weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
    rate = float(parts[2]) if len(parts) > 2 and parts[2] else float("inf")
    burst = int(parts[3]) if len(parts) > 3 and parts[3] else 64
    backlog = int(parts[4]) if len(parts) > 4 and parts[4] else 256
    quota = int(parts[5]) if len(parts) > 5 and parts[5] else None
    return TenantConfig(name=name, weight=weight, rate_per_s=rate,
                        burst=burst, max_backlog=backlog,
                        max_result_bytes=quota)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service.app import ServiceApp, ServiceConfig
    from .service.brownout import SloConfig
    from .service.http import serve, sockname

    try:
        tenants = {
            config.name: config
            for config in (_parse_tenant_spec(s) for s in args.tenant)
        }
    except ValueError as exc:
        print(f"bad --tenant spec: {exc}", file=sys.stderr)
        return 2

    slo = None
    if args.slo_latency is not None or args.slo_queue_depth is not None:
        try:
            slo = SloConfig(
                target_latency_s=args.slo_latency
                if args.slo_latency is not None else 2.0,
                max_queue_depth=args.slo_queue_depth
                if args.slo_queue_depth is not None else 128,
            )
        except ValueError as exc:
            print(f"bad --slo-* flags: {exc}", file=sys.stderr)
            return 2

    async def run() -> None:
        app = ServiceApp(ServiceConfig(
            cache_dir=args.cache_dir,
            n_workers=args.workers,
            tenants=tenants,
            allow_chaos=args.allow_chaos,
            isolation=args.isolation or "warm",
            state_dir=args.state_dir,
            slo=slo,
        ))
        await app.start()
        server = await serve(app, host=args.host, port=args.port)
        host, port = sockname(server)
        print(f"repro service on http://{host}:{port} "
              f"({args.workers} workers, "
              f"cache={'on' if app.store.disk is not None else 'off'}, "
              f"journal={'on' if app.journal is not None else 'off'})",
              file=sys.stderr)
        if app.recovery:
            print(f"recovered from journal: "
                  f"{app.recovery.get('n_restored', 0)} jobs restored, "
                  f"{app.recovery.get('n_requeued', 0)} requeued",
              file=sys.stderr)

        # Graceful drain on SIGTERM/SIGINT: new POSTs get a structured
        # 503 ``draining`` while queued/in-flight jobs get the worker
        # pool's grace period; the journal is closed cleanly on the
        # way out.  A second signal (or SIGKILL) still crashes, which
        # is precisely what the journal is for.
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()

        def request_shutdown() -> None:
            app.begin_drain()
            shutdown.set()

        handled = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, request_shutdown)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: fall back to KeyboardInterrupt
        try:
            async with server:
                serving = asyncio.ensure_future(server.serve_forever())
                await shutdown.wait()
                print("draining: refusing new jobs, finishing queued ones",
                      file=sys.stderr)
                serving.cancel()
                try:
                    await serving
                except asyncio.CancelledError:
                    pass
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)
            await app.stop()
            print("service stopped", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nservice stopped", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-layer approximate computing component library",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_campaign_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="campaign worker processes (1 = serial)")
        p.add_argument("--cache-dir", default=None,
                       help="campaign result cache (warm start / resume)")
        p.add_argument("--isolation", choices=["process", "warm"],
                       default=None,
                       help="execution engine for isolated attempts: "
                            "'process' spawns a worker per attempt, "
                            "'warm' streams tasks over a persistent "
                            "pre-forked pool (results are identical)")

    p = sub.add_parser(
        "characterize-adders", help="Table III characterization"
    )
    p.add_argument("--width", type=int, default=0,
                   help="also characterize W-bit ripple adders")
    p.add_argument("--lsbs", type=int, nargs="+", default=[2, 4, 6],
                   help="approximated-LSB counts for the family sweep")
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_characterize_adders)

    p = sub.add_parser("explore-gear", help="Table IV / Fig. 4 sweep")
    p.add_argument("--width", type=int, default=11)
    p.add_argument("--min-accuracy", type=float, default=None,
                   help="also run the min-area selection at this bound")
    p.add_argument("--model", default="exact",
                   choices=["exact", "paper", "monte-carlo", "monte_carlo"],
                   help="accuracy model for each design-space row")
    p.add_argument("--samples", type=int, default=200_000,
                   help="Monte Carlo samples per configuration")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (per-row seeds derive from it)")
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_explore_gear)

    p = sub.add_parser(
        "characterize-multipliers", help="Fig. 5 / Fig. 6 characterization"
    )
    p.add_argument("--widths", type=int, nargs="*", default=[4, 8])
    p.add_argument("--samples", type=int, default=20_000)
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_characterize_multipliers)

    p = sub.add_parser(
        "characterize-sad", help="SAD accelerator family characterization"
    )
    p.add_argument("--pixels", type=int, default=64)
    p.add_argument("--lsbs", type=int, nargs="+", default=[2, 4, 6])
    p.add_argument("--samples", type=int, default=3000)
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_characterize_sad)

    p = sub.add_parser(
        "campaign",
        help="run a named characterization campaign (parallel + cached)",
    )
    p.add_argument("campaign",
                   choices=["table4", "fig6", "ripple", "sad", "filter"],
                   help="which characterization sweep to run")
    p.add_argument("--width", type=int, default=0,
                   help="operand width (table4: 11, ripple: 8 by default)")
    p.add_argument("--widths", type=int, nargs="*", default=[2, 4, 8],
                   help="fig6 multiplier widths")
    p.add_argument("--lsbs", type=int, nargs="+", default=[2, 4, 6],
                   help="approximated-LSB counts (ripple/sad/filter)")
    p.add_argument("--pixels", type=int, default=64,
                   help="pixels per SAD block")
    p.add_argument("--model", default="exact",
                   choices=["exact", "paper", "monte-carlo", "monte_carlo"],
                   help="table4 accuracy model")
    p.add_argument("--samples", type=int, default=0,
                   help="samples per task (0 = campaign default)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (per-task seeds derive from it)")
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "resilience",
        help="transient-fault sweep through the hardened campaign engine",
    )
    p.add_argument("workload",
                   choices=["cell", "gear", "sad", "filter", "dct"],
                   help="which layer/workload to inject faults into")
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.0, 1e-4, 1e-3, 1e-2],
                   help="per-bit transient fault rates to sweep")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (fault plans derive from it)")
    p.add_argument("--no-qos", action="store_true",
                   help="sad: run unguarded (skip the QosGuard wrapper)")
    p.add_argument("--fa", default="AccuFA",
                   help="sad: full-adder cell of the guarded stage")
    p.add_argument("--approx-lsbs", type=int, default=0,
                   help="sad: approximated LSBs of the guarded stage")
    p.add_argument("--image", default="gradient",
                   help="filter: standard image name")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-task wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="retry attempts per task before quarantine")
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser(
        "verify",
        help="cross-layer differential verification (oracle registry)",
    )
    p.add_argument(
        "component", nargs="?", default="all",
        help="'all', a family (fa, ripple, gear, mul2x2, recmul, sad, "
             "filter), an exact component name, or a comma list",
    )
    from .verify.report import BUDGETS

    p.add_argument("--budget", default="fast", choices=sorted(BUDGETS),
                   help="verification depth (stimulus / sample counts)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed (stimulus and law seeds derive from it)")
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "analytic",
        help="exact PMF-convolution error analysis of block adders",
    )
    p.add_argument("--config", action="append", default=[],
                   metavar="N,R,P",
                   help="homogeneous GeAr configuration (repeatable)")
    p.add_argument("--segments", action="append", default=[],
                   metavar="R:P,R:P,...",
                   help="heterogeneous segment spec, low segment first "
                        "(repeatable)")
    p.add_argument("--sweep", action="store_true",
                   help="Pareto-sweep the heterogeneous space and compare "
                        "against the homogeneous Table IV front")
    p.add_argument("--width", type=int, default=8,
                   help="sweep operand width")
    p.add_argument("--max-segments", type=int, default=3,
                   help="sweep cap on heterogeneous segment count")
    p.add_argument("--max-p", type=int, default=None,
                   help="sweep cap on per-segment prediction depth")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (cache identity only -- results are "
                        "exact)")
    p.add_argument("--csv", action="store_true")
    add_campaign_flags(p)
    p.set_defaults(func=_cmd_analytic)

    p = sub.add_parser("luts", help="FPGA LUT-mapping estimates")
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--width", type=int, default=0,
                   help="also map W-bit ripple adders")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=_cmd_luts)

    p = sub.add_parser(
        "serve",
        help="serve approximate-compute jobs over HTTP (asyncio + SSE)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = pick a free one)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job executors")
    p.add_argument("--cache-dir", default=None,
                   help="shared content-addressed result store directory")
    p.add_argument("--tenant", action="append", default=[],
                   metavar="NAME:WEIGHT[:RATE[:BURST[:BACKLOG[:QUOTA]]]]",
                   help="per-tenant policy (repeatable); others get the "
                        "default policy; QUOTA caps stored result bytes")
    p.add_argument("--allow-chaos", action="store_true",
                   help="also serve chaos_* kinds (testing only)")
    p.add_argument("--isolation", choices=["process", "warm"],
                   default="warm",
                   help="job execution engine: persistent warm pool "
                        "(default) or process-per-attempt")
    p.add_argument("--state-dir", default=None,
                   help="crash-safety directory: durable job journal "
                        "(replayed on restart) plus the result store "
                        "unless --cache-dir overrides it")
    p.add_argument("--slo-latency", type=float, default=None,
                   metavar="SECONDS",
                   help="arm the overload brownout controller with this "
                        "end-to-end latency target")
    p.add_argument("--slo-queue-depth", type=int, default=None,
                   metavar="N",
                   help="queue depth past which brownout escalation "
                        "starts (arms the controller)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("encode", help="HEVC-lite case study (Fig. 9)")
    p.add_argument("--variant", default="ApxSAD2")
    p.add_argument("--approx-lsbs", type=int, default=4)
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--search-range", type=int, default=4)
    p.add_argument("--qp", type=int, default=4)
    p.add_argument("--noise", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_encode)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "isolation", None) and args.func is not _cmd_serve:
        # Campaign subcommands thread the engine choice through the
        # runner's environment knob so every nested run_campaign call
        # (sweeps, verify, resilience) picks it up.
        os.environ["REPRO_CAMPAIGN_ISOLATION"] = args.isolation
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
