"""Command-line interface for the approximate-component library.

Four subcommands mirror the workflows a library user runs most:

* ``repro characterize-adders`` -- Table III-style characterization of
  the 1-bit cells and multi-bit ripple adders.
* ``repro explore-gear`` -- Table IV / Fig. 4 design-space sweep with
  constraint queries.
* ``repro characterize-multipliers`` -- Fig. 5 / Fig. 6 multiplier
  characterization.
* ``repro encode`` -- the HEVC-lite case study with a chosen SAD
  variant (Fig. 9 data points).

Example:
    $ python -m repro.cli explore-gear --width 11 --min-accuracy 90
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from .accelerators.sad import SAD_VARIANT_CELLS, SADAccelerator
from .adders.characterize import characterize_adder, characterize_ripple_family
from .adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from .characterization.report import format_records, records_to_csv
from .dse.explorer import explore_gear_space
from .dse.selection import select_max_accuracy, select_min_area
from .logic.simulate import estimate_power
from .media.synthetic import moving_sequence
from .multipliers.characterize import (
    characterize_mul2x2_family,
    fig6_multiplier_family,
)
from .video.codec import HevcLiteEncoder

__all__ = ["main", "build_parser"]


def _print(records: List[dict], columns, as_csv: bool, title: str) -> None:
    if as_csv:
        print(records_to_csv(records, columns))
    else:
        print(format_records(records, columns=columns, title=title))


def _cmd_characterize_adders(args: argparse.Namespace) -> int:
    rows = []
    for name in FULL_ADDER_NAMES:
        fa = FULL_ADDERS[name]
        netlist = fa.netlist()
        rows.append(
            {
                "adder": name,
                "error_cases": fa.n_error_cases,
                "area_ge": round(netlist.area_ge, 2),
                "power_nw": round(estimate_power(netlist).total_nw, 1),
                "delay_ps": round(netlist.delay_ps(), 1),
            }
        )
    _print(rows, None, args.csv, "1-bit full adders (Table III)")
    if args.width:
        records = characterize_ripple_family(
            args.width, approx_lsb_counts=tuple(args.lsbs)
        )
        family_rows = [r.as_row() for r in records]
        _print(
            family_rows,
            ["name", "area_ge", "error_rate", "mean_error_distance",
             "max_error_distance"],
            args.csv,
            f"\n{args.width}-bit ripple adders",
        )
    return 0


def _cmd_explore_gear(args: argparse.Namespace) -> int:
    records = explore_gear_space(args.width)
    for record in records:
        record["accuracy_percent"] = round(record["accuracy_percent"], 3)
    _print(
        records,
        ["r", "p", "k", "l", "accuracy_percent", "lut_count", "delay_ps"],
        args.csv,
        f"GeAr design space, N={args.width} (Table IV)",
    )
    best = select_max_accuracy(records)
    print(f"\nmax accuracy: {best['name']} ({best['accuracy_percent']}%)")
    if args.min_accuracy is not None:
        try:
            pick = select_min_area(records, args.min_accuracy)
            print(
                f"min area with >= {args.min_accuracy}% accuracy: "
                f"{pick['name']} ({pick['lut_count']} LUTs)"
            )
        except ValueError as exc:
            print(f"constraint infeasible: {exc}", file=sys.stderr)
            return 1
    return 0


def _cmd_characterize_multipliers(args: argparse.Namespace) -> int:
    _print(
        characterize_mul2x2_family(),
        None,
        args.csv,
        "2x2 multipliers (Fig. 5)",
    )
    if args.widths:
        records = fig6_multiplier_family(
            widths=tuple(args.widths), n_samples=args.samples
        )
        rows = [r.as_row() for r in records]
        _print(
            rows,
            ["name", "width", "area_ge", "power_nw", "error_rate",
             "normalized_med"],
            args.csv,
            "\nmulti-bit multipliers (Fig. 6)",
        )
    return 0


def _cmd_characterize_sad(args: argparse.Namespace) -> int:
    from .accelerators.sad import characterize_sad_family

    records = characterize_sad_family(
        n_pixels=args.pixels,
        lsb_counts=tuple(args.lsbs),
        n_samples=args.samples,
    )
    _print(records, None, args.csv,
           f"SAD accelerator family ({args.pixels} pixels)")
    return 0


def _cmd_luts(args: argparse.Namespace) -> int:
    from .adders.netlist_builder import build_ripple_adder_netlist
    from .adders.ripple import ApproximateRippleAdder
    from .logic.mapping import map_to_luts

    rows = []
    for name in FULL_ADDER_NAMES:
        mapping = map_to_luts(FULL_ADDERS[name].netlist(), k=args.k)
        rows.append(
            {
                "component": name,
                "luts": mapping.n_luts,
                "luts_dup": mapping.n_luts_duplicated,
                "depth": mapping.depth,
            }
        )
    if args.width:
        for cell, lsbs in (("AccuFA", 0), ("ApxFA1", args.width // 2),
                           ("ApxFA5", args.width // 2)):
            adder = ApproximateRippleAdder(
                args.width, approx_fa=cell, num_approx_lsbs=lsbs
            )
            netlist = build_ripple_adder_netlist(adder)
            mapping = map_to_luts(netlist, k=args.k)
            rows.append(
                {
                    "component": adder.name,
                    "luts": mapping.n_luts,
                    "luts_dup": mapping.n_luts_duplicated,
                    "depth": mapping.depth,
                }
            )
    _print(rows, None, args.csv, f"{args.k}-LUT mapping estimates")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    if args.variant not in SAD_VARIANT_CELLS:
        known = ", ".join(SAD_VARIANT_CELLS)
        print(f"unknown variant {args.variant!r}; known: {known}",
              file=sys.stderr)
        return 2
    frames = moving_sequence(
        n_frames=args.frames, size=args.size, seed=args.seed,
        noise_sigma=args.noise,
    )
    encoder = HevcLiteEncoder(search_range=args.search_range, qp=args.qp)
    baseline = encoder.encode(frames, SADAccelerator(n_pixels=64))
    cell = SAD_VARIANT_CELLS[args.variant]
    accelerator = SADAccelerator(
        n_pixels=64, fa=cell, approx_lsbs=args.approx_lsbs
    )
    result = encoder.encode(frames, accelerator)
    print(f"baseline (AccuSAD): {baseline.total_bits} bits, "
          f"{baseline.psnr_db:.2f} dB")
    print(f"{args.variant} ({args.approx_lsbs} LSBs): "
          f"{result.total_bits} bits "
          f"({result.bitrate_increase_percent(baseline):+.2f}%), "
          f"{result.psnr_db:.2f} dB, "
          f"SAD energy {accelerator.energy_per_op_fj:.0f} fJ/op "
          f"(exact: {SADAccelerator(n_pixels=64).energy_per_op_fj:.0f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-layer approximate computing component library",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "characterize-adders", help="Table III characterization"
    )
    p.add_argument("--width", type=int, default=0,
                   help="also characterize W-bit ripple adders")
    p.add_argument("--lsbs", type=int, nargs="+", default=[2, 4, 6],
                   help="approximated-LSB counts for the family sweep")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=_cmd_characterize_adders)

    p = sub.add_parser("explore-gear", help="Table IV / Fig. 4 sweep")
    p.add_argument("--width", type=int, default=11)
    p.add_argument("--min-accuracy", type=float, default=None,
                   help="also run the min-area selection at this bound")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=_cmd_explore_gear)

    p = sub.add_parser(
        "characterize-multipliers", help="Fig. 5 / Fig. 6 characterization"
    )
    p.add_argument("--widths", type=int, nargs="*", default=[4, 8])
    p.add_argument("--samples", type=int, default=20_000)
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=_cmd_characterize_multipliers)

    p = sub.add_parser(
        "characterize-sad", help="SAD accelerator family characterization"
    )
    p.add_argument("--pixels", type=int, default=64)
    p.add_argument("--lsbs", type=int, nargs="+", default=[2, 4, 6])
    p.add_argument("--samples", type=int, default=3000)
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=_cmd_characterize_sad)

    p = sub.add_parser("luts", help="FPGA LUT-mapping estimates")
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--width", type=int, default=0,
                   help="also map W-bit ripple adders")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=_cmd_luts)

    p = sub.add_parser("encode", help="HEVC-lite case study (Fig. 9)")
    p.add_argument("--variant", default="ApxSAD2")
    p.add_argument("--approx-lsbs", type=int, default=4)
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--search-range", type=int, default=4)
    p.add_argument("--qp", type=int, default=4)
    p.add_argument("--noise", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_encode)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
