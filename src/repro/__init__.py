"""repro -- Cross-Layer Approximate Computing: From Logic to Architectures.

A from-scratch Python reproduction of Shafique, Hafiz, Rehman,
El-Harouni & Henkel, "Invited: Cross-Layer Approximate Computing: From
Logic to Architectures" (DAC 2016), spanning the full stack the paper
describes:

* :mod:`repro.logic` -- gate-level substrate (cells, netlists, truth-table
  synthesis, simulation, power/delay estimation);
* :mod:`repro.adders` -- Table III 1-bit approximate full adders, multi-bit
  ripple adders, and the GeAr accuracy-configurable adder with analytic
  error models and iterative error correction;
* :mod:`repro.multipliers` -- Fig. 5 2x2 approximate multipliers and their
  recursive / Wallace-tree multi-bit compositions;
* :mod:`repro.errors` -- quality metrics, discrete error-PMF algebra, and
  statistical error propagation / masking analysis;
* :mod:`repro.accelerators` -- dataflow accelerator framework, the SAD and
  low-pass-filter case studies, approximate DCT, consolidated error
  correction, and the approximation management unit;
* :mod:`repro.video` -- the HEVC-lite encoder substrate behind the Fig. 8/9
  experiments;
* :mod:`repro.media` -- synthetic images/video and SSIM;
* :mod:`repro.dse` -- design-space exploration (Table IV / Fig. 4);
* :mod:`repro.campaign` -- parallel, cached, resumable, crash-hardened
  characterization campaign engine behind the large sweeps;
* :mod:`repro.resilience` -- cross-layer transient-fault injection and
  the QosGuard graceful-degradation controller;
* :mod:`repro.survey` -- the Table I/II taxonomy as structured data;
* :mod:`repro.characterization` -- published constants and reporting.

Quickstart:
    >>> from repro.adders import GeArAdder, GeArConfig
    >>> adder = GeArAdder(GeArConfig(n=16, r=4, p=4))
    >>> int(adder.add(1000, 2000))
    3000
"""

from . import (
    accelerators,
    adders,
    campaign,
    characterization,
    dse,
    errors,
    logic,
    media,
    multipliers,
    resilience,
    survey,
    video,
)
from .adders import (
    ApproximateRippleAdder,
    FULL_ADDERS,
    GeArAdder,
    GeArConfig,
    full_adder,
)
from .accelerators import LowPassFilterAccelerator, SADAccelerator
from .errors import ErrorPMF, compute_error_metrics
from .multipliers import RecursiveMultiplier, WallaceMultiplier, multiplier_2x2
from .video import HevcLiteEncoder

__version__ = "1.0.0"

__all__ = [
    "accelerators",
    "adders",
    "campaign",
    "characterization",
    "dse",
    "errors",
    "logic",
    "media",
    "multipliers",
    "resilience",
    "survey",
    "video",
    "ApproximateRippleAdder",
    "FULL_ADDERS",
    "GeArAdder",
    "GeArConfig",
    "full_adder",
    "LowPassFilterAccelerator",
    "SADAccelerator",
    "ErrorPMF",
    "compute_error_metrics",
    "RecursiveMultiplier",
    "WallaceMultiplier",
    "multiplier_2x2",
    "HevcLiteEncoder",
    "__version__",
]
