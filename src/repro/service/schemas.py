"""Request validation for the service API (stdlib-only, schema-lite).

The service accepts JSON job requests and turns them into
:class:`~repro.campaign.task.CampaignTask` descriptions.  Validation is
strict and structured: every rejection is a :class:`SchemaError` naming
the offending field, which the HTTP layer renders as a 400 with a
machine-readable body -- a bad request never reaches the queue, the
admission controller, or a worker.

A job request looks like::

    {
      "kind": "analytic",                  # registered campaign kind
      "params": {"n": 8, "r": 2, "p": 2},  # JSON-object task params
      "seed": 0,                           # optional, default 0
      "qos": {"error_budget": 0.01,        # optional QoS declaration
              "metric": "error_rate"},
      "timeout_s": 5.0,                    # optional hardened execution
      "max_attempts": 2,                   # optional bounded retries
      "deadline_ms": 2000                  # optional end-to-end deadline
    }

``deadline_ms`` is a *relative* end-to-end deadline: admission stamps
an absolute deadline, and the job fails fast with a structured
``deadline_exceeded`` once queue wait plus execution would cross it --
a late answer is a wrong answer, so the service stops burning workers
on it (see docs/SERVICE.md, "Deadline propagation").

Chaos kinds (``chaos_*``) are refused unless the app opts in -- they
exist to exercise the hardened runner, not to serve tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "JobSpec",
    "QosSpec",
    "SchemaError",
    "QOS_METRICS",
    "validate_job_request",
]

#: Metrics a QoS declaration may budget, as reported by the analytic
#: engine (:func:`repro.errors.analytic.predict_error_statistics`).
QOS_METRICS = ("error_rate", "nmed", "med")

#: Hard caps on hardened-execution knobs a request may ask for.
MAX_TIMEOUT_S = 300.0
MAX_ATTEMPTS = 5
MAX_DEADLINE_MS = 24 * 3600 * 1000

#: Upper bound on the canonical JSON size of ``params`` (anti-abuse).
MAX_PARAMS_BYTES = 64 * 1024


class SchemaError(ValueError):
    """A request failed validation; ``field`` names the culprit."""

    def __init__(self, message: str, fieldname: str = "") -> None:
        super().__init__(message)
        self.field = fieldname

    def to_record(self) -> Dict[str, str]:
        return {"error": "bad_request", "field": self.field,
                "message": str(self)}


@dataclass(frozen=True)
class QosSpec:
    """A request's declared quality budget ("best effort at <= budget")."""

    error_budget: float
    metric: str = "error_rate"

    def to_record(self) -> Dict[str, Any]:
        return {"error_budget": self.error_budget, "metric": self.metric}


@dataclass(frozen=True)
class JobSpec:
    """A validated job request, ready for admission control."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    qos: Optional[QosSpec] = None
    timeout_s: Optional[float] = None
    max_attempts: int = 1
    deadline_ms: Optional[int] = None

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "seed": self.seed,
            "qos": self.qos.to_record() if self.qos else None,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_record` output (journal replay)."""
        qos = record.get("qos")
        return cls(
            kind=record["kind"],
            params=dict(record.get("params", {})),
            seed=int(record.get("seed", 0)),
            qos=QosSpec(
                error_budget=float(qos["error_budget"]),
                metric=qos.get("metric", "error_rate"),
            ) if qos else None,
            timeout_s=record.get("timeout_s"),
            max_attempts=int(record.get("max_attempts", 1)),
            deadline_ms=record.get("deadline_ms"),
        )


def _require(condition: bool, message: str, fieldname: str) -> None:
    if not condition:
        raise SchemaError(message, fieldname)


def _json_size(obj: Any) -> int:
    import json

    return len(json.dumps(obj, separators=(",", ":")))


def _validate_qos(payload: Any) -> QosSpec:
    _require(isinstance(payload, dict), "qos must be an object", "qos")
    unknown = set(payload) - {"error_budget", "metric"}
    _require(not unknown, f"unknown qos fields: {sorted(unknown)}", "qos")
    budget = payload.get("error_budget")
    _require(
        isinstance(budget, (int, float)) and not isinstance(budget, bool),
        "qos.error_budget must be a number",
        "qos.error_budget",
    )
    _require(
        0.0 <= float(budget) <= 1.0,
        f"qos.error_budget must be in [0, 1], got {budget}",
        "qos.error_budget",
    )
    metric = payload.get("metric", "error_rate")
    _require(
        metric in QOS_METRICS,
        f"qos.metric must be one of {list(QOS_METRICS)}, got {metric!r}",
        "qos.metric",
    )
    return QosSpec(error_budget=float(budget), metric=metric)


def validate_job_request(
    payload: Any, allow_chaos: bool = False
) -> JobSpec:
    """Validate one POST /v1/jobs body into a :class:`JobSpec`.

    Raises:
        SchemaError: With the offending field name, on any violation --
            unknown top-level fields, unregistered or disallowed kinds,
            non-object params, oversized params, out-of-range seeds or
            hardened-execution knobs, malformed QoS declarations.
    """
    from ..campaign.registry import task_kinds

    _require(isinstance(payload, dict), "request body must be a JSON object",
             "")
    allowed = {"kind", "params", "seed", "qos", "timeout_s", "max_attempts",
               "deadline_ms"}
    unknown = set(payload) - allowed
    _require(not unknown, f"unknown fields: {sorted(unknown)}", "")

    kind = payload.get("kind")
    _require(isinstance(kind, str) and kind, "kind must be a non-empty string",
             "kind")
    known = task_kinds()
    _require(kind in known, f"unknown kind {kind!r}", "kind")
    _require(
        allow_chaos or not kind.startswith("chaos_"),
        f"kind {kind!r} is not served",
        "kind",
    )

    params = payload.get("params", {})
    _require(isinstance(params, dict), "params must be a JSON object",
             "params")
    try:
        size = _json_size(params)
    except (TypeError, ValueError):
        raise SchemaError("params must be JSON-serializable", "params")
    _require(
        size <= MAX_PARAMS_BYTES,
        f"params too large ({size} > {MAX_PARAMS_BYTES} bytes)",
        "params",
    )

    seed = payload.get("seed", 0)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "seed must be an integer",
        "seed",
    )
    _require(0 <= seed < 2**63, "seed must be in [0, 2**63)", "seed")

    timeout_s = payload.get("timeout_s")
    if timeout_s is not None:
        _require(
            isinstance(timeout_s, (int, float))
            and not isinstance(timeout_s, bool),
            "timeout_s must be a number",
            "timeout_s",
        )
        _require(
            0.0 < float(timeout_s) <= MAX_TIMEOUT_S,
            f"timeout_s must be in (0, {MAX_TIMEOUT_S}]",
            "timeout_s",
        )
        timeout_s = float(timeout_s)

    max_attempts = payload.get("max_attempts", 1)
    _require(
        isinstance(max_attempts, int) and not isinstance(max_attempts, bool),
        "max_attempts must be an integer",
        "max_attempts",
    )
    _require(
        1 <= max_attempts <= MAX_ATTEMPTS,
        f"max_attempts must be in [1, {MAX_ATTEMPTS}]",
        "max_attempts",
    )

    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        _require(
            isinstance(deadline_ms, int) and not isinstance(deadline_ms, bool),
            "deadline_ms must be an integer",
            "deadline_ms",
        )
        _require(
            1 <= deadline_ms <= MAX_DEADLINE_MS,
            f"deadline_ms must be in [1, {MAX_DEADLINE_MS}]",
            "deadline_ms",
        )

    qos = payload.get("qos")
    qos_spec = _validate_qos(qos) if qos is not None else None

    return JobSpec(
        kind=kind,
        params=dict(params),
        seed=seed,
        qos=qos_spec,
        timeout_s=timeout_s,
        max_attempts=max_attempts,
        deadline_ms=deadline_ms,
    )
