"""The service application: routing, admission, and job bookkeeping.

:class:`ServiceApp` is transport-agnostic -- it maps parsed
:class:`~repro.service.http.Request` objects to JSON responses or SSE
streams.  The HTTP layer (real sockets or in-process test stubs) sits
in front; the :class:`~repro.service.workers.WorkerPool`, the
:class:`~repro.service.queue.AsyncFairQueue`, and the
:class:`~repro.service.store.SharedResultStore` sit behind.

API surface (all JSON):

======  ==========================  =====================================
method  path                        answer
======  ==========================  =====================================
GET     ``/v1/healthz``             liveness probe
GET     ``/v1/kinds``               job kinds this deployment serves
GET     ``/v1/stats``               queue/store/worker/tenant counters
POST    ``/v1/jobs``                submit a job (``X-Tenant`` header);
                                    200 on an instant cache hit, 202
                                    when queued, 400/413 on bad
                                    requests, 429 with ``Retry-After``
                                    on rate-limit or backlog overflow
GET     ``/v1/jobs/<id>``           job status + result/failure
GET     ``/v1/jobs/<id>/events``    SSE stream (replay + live follow;
                                    honors ``Last-Event-ID``)
======  ==========================  =====================================

A submitted job is admission-negotiated (QoS budgets against the exact
analytic predictor), content-addressed by its stable campaign task
hash, answered from the shared store when warm, and otherwise queued
weighted-fair per tenant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..campaign import CampaignTask
from ..campaign.registry import task_kinds
from .admission import negotiate
from .http import HttpError, Request, Response, SSEStream, json_response
from .jobs import Job
from .queue import AsyncFairQueue, BacklogFull, RateLimited
from .schemas import SchemaError, validate_job_request
from .store import SharedResultStore
from .tenants import TenantConfig, TenantRegistry
from .workers import WorkerPool

__all__ = ["ServiceApp", "ServiceConfig"]

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)$")
_EVENTS_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/events$")

#: Tenant header; absent means the anonymous public tenant.
TENANT_HEADER = "x-tenant"
DEFAULT_TENANT = "public"


@dataclass
class ServiceConfig:
    """Deployment knobs of one :class:`ServiceApp`.

    ``isolation`` selects the execution engine behind the worker pool:
    ``"warm"`` (default) runs jobs on a persistent pre-forked
    :class:`~repro.campaign.warmpool.WarmPool`; ``"process"`` spawns a
    fresh worker process per attempt (``chaos_*`` kinds always use the
    process engine regardless).  ``shutdown_grace_s`` bounds how long
    :meth:`ServiceApp.stop` waits for in-flight jobs before failing
    them with a terminal ``shutdown`` event.
    """

    cache_dir: Optional[str] = None
    n_workers: int = 2
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    default_tenant: TenantConfig = field(
        default_factory=lambda: TenantConfig(name="default")
    )
    allow_chaos: bool = False
    max_jobs_retained: int = 10_000
    clock: Optional[Callable[[], float]] = None
    isolation: str = "warm"
    shutdown_grace_s: float = 5.0


class ServiceApp:
    """Asyncio application serving approximate-compute jobs."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.tenants = TenantRegistry(
            tenants=dict(self.config.tenants),
            default=self.config.default_tenant,
            clock=self.config.clock,
        )
        self.queue = AsyncFairQueue(self.tenants)
        self.store = SharedResultStore(self.config.cache_dir)
        self.pool = WorkerPool(
            self,
            n_workers=self.config.n_workers,
            isolation=self.config.isolation,
        )
        self.jobs: Dict[str, Job] = {}
        self._job_order: List[str] = []
        self._next_job = 0
        self.n_jobs_accepted = 0
        self.n_jobs_rejected = 0
        self.completed_per_tenant: Dict[str, int] = {}
        self.completion_order: List[str] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, paused: bool = False) -> None:
        await self.pool.start(paused=paused)

    async def stop(self) -> None:
        await self.pool.stop()

    def on_job_finished(self, job: Job) -> None:
        """Worker-pool callback: account one finished job."""
        self.completed_per_tenant[job.tenant] = (
            self.completed_per_tenant.get(job.tenant, 0) + 1
        )
        self.completion_order.append(job.job_id)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def dispatch(
        self, request: Request
    ) -> Union[Response, SSEStream]:
        """Route one request; raises :class:`HttpError` for error paths."""
        path = request.path.rstrip("/") or "/"
        if path == "/v1/healthz":
            self._require_method(request, "GET")
            return json_response(200, {"ok": True})
        if path == "/v1/kinds":
            self._require_method(request, "GET")
            return json_response(200, {"kinds": self._served_kinds()})
        if path == "/v1/stats":
            self._require_method(request, "GET")
            return json_response(200, self.stats())
        if path == "/v1/jobs":
            self._require_method(request, "POST")
            return self._submit(request)
        match = _JOB_PATH.match(path)
        if match:
            self._require_method(request, "GET")
            return json_response(200, self._job(match.group(1)).to_record())
        match = _EVENTS_PATH.match(path)
        if match:
            self._require_method(request, "GET")
            job = self._job(match.group(1))
            after = -1
            last_id = request.header("last-event-id")
            if last_id:
                try:
                    after = int(last_id)
                except ValueError:
                    raise HttpError(400, {
                        "error": "bad_request",
                        "message": f"bad Last-Event-ID {last_id!r}",
                    })
            return SSEStream(job=job, after=after)
        raise HttpError(404, {"error": "not_found", "path": request.path})

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(405, {
                "error": "method_not_allowed",
                "method": request.method,
                "allowed": [method],
            })

    def _served_kinds(self) -> List[str]:
        kinds = task_kinds()
        if not self.config.allow_chaos:
            kinds = [k for k in kinds if not k.startswith("chaos_")]
        return kinds

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, {"error": "not_found", "job_id": job_id})
        return job

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _submit(self, request: Request) -> Response:
        tenant = request.header(TENANT_HEADER, DEFAULT_TENANT) or \
            DEFAULT_TENANT
        payload = request.json()
        try:
            spec = validate_job_request(
                payload, allow_chaos=self.config.allow_chaos
            )
            decision = negotiate(spec)
        except SchemaError as exc:
            self.n_jobs_rejected += 1
            raise HttpError(400, exc.to_record())

        admitted = decision.spec
        task = CampaignTask(
            kind=admitted.kind, params=admitted.params, seed=admitted.seed
        )
        job_id = f"j{self._next_job:08d}"
        self._next_job += 1
        job = Job(job_id, tenant, admitted, task.key, decision)
        job.emit("accepted", tenant=tenant, kind=admitted.kind, key=task.key)
        job.emit("admitted", **decision.to_record())

        entry = self.store.get(task.key)
        if entry is not None:
            # Content-addressed hit: answered without queue or worker.
            self._retain(job)
            job.emit("cache_hit", tier="store")
            job.complete(entry["result"], served_from="cache")
            self.n_jobs_accepted += 1
            self.on_job_finished(job)
            return json_response(200, job.to_record())

        quota = self.tenants.config(tenant).max_result_bytes
        if quota is not None:
            used = self.store.tenant_bytes(tenant)
            if used >= quota:
                # Enforced at admission against bytes already stored, so
                # jobs in flight may overshoot by at most one backlog's
                # worth of results -- documented in docs/SERVICE.md.
                self.n_jobs_rejected += 1
                raise HttpError(429, {
                    "error": "quota_exceeded",
                    "tenant": tenant,
                    "used_bytes": used,
                    "max_result_bytes": quota,
                })

        try:
            self.queue.submit_nowait(tenant, job)
        except RateLimited as exc:
            self.n_jobs_rejected += 1
            raise HttpError(429, {
                "error": "rate_limited",
                "tenant": tenant,
                "retry_after_s": round(exc.retry_after_s, 3),
            })
        except BacklogFull as exc:
            self.n_jobs_rejected += 1
            raise HttpError(429, {
                "error": "backlog_full",
                "tenant": tenant,
                "max_backlog": exc.max_backlog,
            })
        self._retain(job)
        job.emit("queued", backlog=self.queue.core.backlog(tenant))
        self.n_jobs_accepted += 1
        return json_response(202, job.to_record(include_result=False))

    def _retain(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        self._job_order.append(job.job_id)
        while len(self._job_order) > self.config.max_jobs_retained:
            stale = self._job_order.pop(0)
            dropped = self.jobs.get(stale)
            if dropped is not None and dropped.state in ("done", "failed"):
                del self.jobs[stale]
            else:
                self._job_order.append(stale)  # still active: keep it
                break

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "jobs": {
                "accepted": self.n_jobs_accepted,
                "rejected": self.n_jobs_rejected,
                "retained": len(self.jobs),
                "completed_per_tenant": dict(
                    sorted(self.completed_per_tenant.items())
                ),
            },
            "queue": self.queue.core.to_record(),
            "store": self.store.to_record(),
            "workers": self.pool.to_record(),
            "tenants": self.tenants.to_record(),
        }
