"""The service application: routing, admission, and job bookkeeping.

:class:`ServiceApp` is transport-agnostic -- it maps parsed
:class:`~repro.service.http.Request` objects to JSON responses or SSE
streams.  The HTTP layer (real sockets or in-process test stubs) sits
in front; the :class:`~repro.service.workers.WorkerPool`, the
:class:`~repro.service.queue.AsyncFairQueue`, and the
:class:`~repro.service.store.SharedResultStore` sit behind.

API surface (all JSON):

======  ==========================  =====================================
method  path                        answer
======  ==========================  =====================================
GET     ``/healthz``                liveness probe (also ``/v1/healthz``)
GET     ``/readyz``                 readiness: 200 only once journal
                                    replay finished and the service is
                                    not draining; 503 otherwise
GET     ``/v1/kinds``               job kinds this deployment serves
GET     ``/v1/stats``               queue/store/worker/tenant counters,
                                    brownout state, recovery report
POST    ``/v1/jobs``                submit a job (``X-Tenant`` header);
                                    200 on an instant cache hit, 202
                                    when queued, 400/413 on bad
                                    requests, 429 with ``Retry-After``
                                    on rate-limit or backlog overflow,
                                    503 while draining or shedding
GET     ``/v1/jobs/<id>``           job status + result/failure
GET     ``/v1/jobs/<id>/events``    SSE stream (replay + live follow;
                                    honors ``Last-Event-ID``)
======  ==========================  =====================================

A submitted job is admission-negotiated (QoS budgets against the exact
analytic predictor), optionally degraded by the overload brownout
controller, content-addressed by its stable campaign task hash,
answered from the shared store when warm, and otherwise queued
weighted-fair per tenant.

With a ``state_dir``, every accepted admission and every job event is
written to the durable :class:`~repro.service.journal.JobJournal`
before the response leaves the process; on startup the journal is
replayed -- terminal jobs are restored read-only (results re-attached
from the content-addressed store), in-flight and queued jobs are
re-admitted without re-tolling the tenant's rate limit, and per-tenant
stored-byte quotas are re-derived from what actually survived on disk.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..campaign import CampaignTask
from ..campaign.registry import task_kinds
from .admission import AdmissionDecision, negotiate
from .brownout import BrownoutController, ShedLoad, SloConfig
from .http import HttpError, Request, Response, SSEStream, json_response
from .jobs import Job, JobEvent
from .journal import JobJournal
from .queue import AsyncFairQueue, BacklogFull, RateLimited
from .schemas import JobSpec, SchemaError, validate_job_request
from .store import SharedResultStore
from .tenants import TenantConfig, TenantRegistry
from .workers import WorkerPool

__all__ = ["ServiceApp", "ServiceConfig"]

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)$")
_EVENTS_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/events$")
_JOB_ID = re.compile(r"^j(\d+)$")

#: Tenant header; absent means the anonymous public tenant.
TENANT_HEADER = "x-tenant"
DEFAULT_TENANT = "public"


@dataclass
class ServiceConfig:
    """Deployment knobs of one :class:`ServiceApp`.

    ``isolation`` selects the execution engine behind the worker pool:
    ``"warm"`` (default) runs jobs on a persistent pre-forked
    :class:`~repro.campaign.warmpool.WarmPool`; ``"process"`` spawns a
    fresh worker process per attempt (``chaos_*`` kinds always use the
    process engine regardless).  ``shutdown_grace_s`` bounds how long
    :meth:`ServiceApp.stop` waits for in-flight jobs before failing
    them with a terminal ``shutdown`` event.

    ``state_dir`` turns on crash safety: the job journal lives in
    ``<state_dir>/journal/`` and, unless ``cache_dir`` is set
    explicitly, the content-addressed result store persists to
    ``<state_dir>/cache/`` (results must survive restarts for recovery
    to re-serve completed jobs).  ``slo`` arms the overload brownout
    controller; ``None`` leaves it dormant.

    ``clock`` (monotonic) drives rate limiting, latency accounting and
    brownout hysteresis; ``wall_clock`` (epoch seconds) stamps absolute
    job deadlines so they stay meaningful across a restart.  Both are
    injectable for deterministic tests.
    """

    cache_dir: Optional[str] = None
    n_workers: int = 2
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    default_tenant: TenantConfig = field(
        default_factory=lambda: TenantConfig(name="default")
    )
    allow_chaos: bool = False
    max_jobs_retained: int = 10_000
    clock: Optional[Callable[[], float]] = None
    isolation: str = "warm"
    shutdown_grace_s: float = 5.0
    state_dir: Optional[str] = None
    wall_clock: Optional[Callable[[], float]] = None
    slo: Optional[SloConfig] = None
    journal_fsync: bool = True
    journal_segment_bytes: int = 4 << 20
    compact_segments: int = 8


class ServiceApp:
    """Asyncio application serving approximate-compute jobs."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.wall: Callable[[], float] = self.config.wall_clock or time.time
        self.tenants = TenantRegistry(
            tenants=dict(self.config.tenants),
            default=self.config.default_tenant,
            clock=self.config.clock,
        )
        self.queue = AsyncFairQueue(self.tenants)
        cache_dir = self.config.cache_dir
        if cache_dir is None and self.config.state_dir:
            cache_dir = os.path.join(self.config.state_dir, "cache")
        self.store = SharedResultStore(cache_dir)
        self.journal: Optional[JobJournal] = None
        if self.config.state_dir:
            self.journal = JobJournal(
                os.path.join(self.config.state_dir, "journal"),
                segment_bytes=self.config.journal_segment_bytes,
                fsync=self.config.journal_fsync,
                compact_segments=self.config.compact_segments,
            )
        self.brownout = BrownoutController(
            slo=self.config.slo,
            clock=self.tenants.clock,
            enabled=self.config.slo is not None,
        )
        self.pool = WorkerPool(
            self,
            n_workers=self.config.n_workers,
            isolation=self.config.isolation,
        )
        self.jobs: Dict[str, Job] = {}
        self._job_order: List[str] = []
        self._next_job = 0
        self.n_jobs_accepted = 0
        self.n_jobs_rejected = 0
        self.completed_per_tenant: Dict[str, int] = {}
        self.completion_order: List[str] = []
        #: Ready only once journal replay (if any) has run; stateless
        #: deployments have nothing to replay and are born ready.
        self.ready = self.journal is None
        self.draining = False
        self.recovery: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, paused: bool = False) -> None:
        if self.journal is not None and not self.ready:
            self._recover()
        await self.pool.start(paused=paused)
        self.ready = True

    async def stop(self) -> None:
        self.ready = False
        await self.pool.stop()
        if self.journal is not None:
            self.journal.close()

    def begin_drain(self) -> None:
        """Refuse new submissions; queued/in-flight jobs keep going.

        The signal-handler hook: SIGTERM flips this before the worker
        pool drains, so a rolling restart answers later POSTs with a
        structured 503 ``draining`` instead of accepting promises it is
        about to break.
        """
        self.draining = True

    async def abandon(self) -> None:
        """Die *without* draining (test hook simulating ``kill -9``).

        Worker tasks are cancelled mid-flight, the warm pool is killed,
        and -- crucially -- no graceful ``shutdown`` failures are
        emitted or journaled, so a subsequent app on the same
        ``state_dir`` sees exactly what a crashed process would have
        left behind.
        """
        import asyncio

        for task in self.pool._tasks:
            task.cancel()
        await asyncio.gather(*self.pool._tasks, return_exceptions=True)
        self.pool._tasks = []
        if self.pool.warm is not None:
            self.pool.warm.close()
        if self.journal is not None:
            self.journal.abandon()

    def on_job_finished(self, job: Job) -> None:
        """Worker-pool callback: account one finished job."""
        self.completed_per_tenant[job.tenant] = (
            self.completed_per_tenant.get(job.tenant, 0) + 1
        )
        self.completion_order.append(job.job_id)
        if job.submitted_at is not None:
            self.brownout.observe_latency(
                job.spec.kind, self.tenants.clock() - job.submitted_at
            )
        self.brownout.tick(len(self.queue))
        if self.journal is not None and self.journal.should_compact():
            self.journal.compact(self._journal_snapshot())

    # ------------------------------------------------------------------
    # journal integration
    # ------------------------------------------------------------------
    def _journal_admit(self, job: Job) -> None:
        if self.journal is None:
            return
        self.journal.log_admit(
            job.job_id,
            job.tenant,
            job.spec.to_record(),
            job.key,
            job.decision.to_record(),
            job.deadline_at,
        )

    def _journal_event(self, job: Job, entry: JobEvent) -> None:
        if self.journal is None:
            return
        self.journal.log_event(
            job.job_id, entry.seq, entry.event, dict(entry.data)
        )

    def _journal_snapshot(self):
        """Live job table as replay records (compaction input)."""
        from .journal import ReplayedJob

        for job_id in self._job_order:
            job = self.jobs.get(job_id)
            if job is None:
                continue
            yield ReplayedJob(
                job_id=job.job_id,
                tenant=job.tenant,
                spec=job.spec.to_record(),
                key=job.key,
                decision=job.decision.to_record(),
                deadline_at=job.deadline_at,
                events=[
                    (entry.seq, entry.event, dict(entry.data))
                    for entry in job.events
                ],
            )

    def _recover(self) -> None:
        """Replay the journal into the live job table (startup only).

        Terminal jobs come back read-only with results re-attached from
        the content-addressed store; anything the previous process
        accepted but never finished is re-queued -- without re-charging
        the tenant's rate limit, because that admission was already
        paid for -- and per-tenant stored-byte accounts are re-derived
        from the entries that actually survived on disk.
        """
        assert self.journal is not None
        report = self.journal.replay()
        attribution: Dict[str, str] = {}
        requeue: List[Job] = []
        n_restored = 0
        for job_id in sorted(report.jobs):
            replayed = report.jobs[job_id]
            match = _JOB_ID.match(job_id)
            if match:
                self._next_job = max(self._next_job, int(match.group(1)) + 1)
            try:
                spec = JobSpec.from_record(replayed.spec)
                decision = AdmissionDecision.from_record(
                    replayed.decision, spec
                )
            except (KeyError, TypeError, ValueError):
                continue  # admit record too mangled to act on
            job = Job(
                job_id, replayed.tenant, spec, replayed.key, decision,
                deadline_at=replayed.deadline_at,
            )
            job.restore_events([
                JobEvent(seq=seq, event=event, data=dict(data))
                for seq, event, data in replayed.events
            ])
            terminal = replayed.terminal
            if terminal is not None:
                event, data = terminal
                if event == "completed":
                    job.state = "done"
                    job.served_from = data.get("served_from")
                    entry = self.store.get(replayed.key)
                    if entry is not None:
                        job.result = entry.get("result")
                    if job.served_from is None and replayed.key:
                        attribution.setdefault(replayed.key, replayed.tenant)
                else:
                    job.state = "failed"
                    job.failure = data.get("failure")
                job.done.set()
            else:
                job.state = "queued"
                requeue.append(job)
            job.on_event = self._journal_event
            self.jobs[job.job_id] = job
            self._job_order.append(job.job_id)
            n_restored += 1
        n_recharged = self.store.rebuild_tenant_bytes(attribution)
        for job in requeue:
            job.emit("recovered", restart=True)
            self.queue.submit_nowait(job.tenant, job, charge=False)
            job.emit("queued", backlog=self.queue.core.backlog(job.tenant))
        if self.journal.should_compact():
            self.journal.compact(report.jobs.values())
        self.recovery = {
            **report.to_record(),
            "n_restored": n_restored,
            "n_requeued": len(requeue),
            "n_recharged": n_recharged,
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def dispatch(
        self, request: Request
    ) -> Union[Response, SSEStream]:
        """Route one request; raises :class:`HttpError` for error paths."""
        path = request.path.rstrip("/") or "/"
        if path in ("/healthz", "/v1/healthz"):
            self._require_method(request, "GET")
            return json_response(200, {"ok": True})
        if path in ("/readyz", "/v1/readyz"):
            self._require_method(request, "GET")
            if self.ready and not self.draining:
                return json_response(200, {"ready": True})
            return json_response(
                503,
                {"ready": False, "draining": self.draining},
                {"Retry-After": "1"},
            )
        if path == "/v1/kinds":
            self._require_method(request, "GET")
            return json_response(200, {"kinds": self._served_kinds()})
        if path == "/v1/stats":
            self._require_method(request, "GET")
            return json_response(200, self.stats())
        if path == "/v1/jobs":
            self._require_method(request, "POST")
            return self._submit(request)
        match = _JOB_PATH.match(path)
        if match:
            self._require_method(request, "GET")
            return json_response(200, self._job(match.group(1)).to_record())
        match = _EVENTS_PATH.match(path)
        if match:
            self._require_method(request, "GET")
            job = self._job(match.group(1))
            after = -1
            last_id = request.header("last-event-id")
            if last_id:
                try:
                    after = int(last_id)
                except ValueError:
                    raise HttpError(400, {
                        "error": "bad_request",
                        "message": f"bad Last-Event-ID {last_id!r}",
                    })
            return SSEStream(job=job, after=after)
        raise HttpError(404, {"error": "not_found", "path": request.path})

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(405, {
                "error": "method_not_allowed",
                "method": request.method,
                "allowed": [method],
            })

    def _served_kinds(self) -> List[str]:
        kinds = task_kinds()
        if not self.config.allow_chaos:
            kinds = [k for k in kinds if not k.startswith("chaos_")]
        return kinds

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, {"error": "not_found", "job_id": job_id})
        return job

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _submit(self, request: Request) -> Response:
        if self.draining:
            self.n_jobs_rejected += 1
            raise HttpError(503, {
                "error": "draining",
                "message": "service is draining for shutdown; "
                           "resubmit to another instance",
            }, headers={"Retry-After": "1"})
        if not self.ready:
            self.n_jobs_rejected += 1
            raise HttpError(503, {
                "error": "not_ready",
                "message": "journal replay in progress",
            }, headers={"Retry-After": "1"})
        tenant = request.header(TENANT_HEADER, DEFAULT_TENANT) or \
            DEFAULT_TENANT
        payload = request.json()
        try:
            spec = validate_job_request(
                payload, allow_chaos=self.config.allow_chaos
            )
            decision = negotiate(spec)
        except SchemaError as exc:
            self.n_jobs_rejected += 1
            raise HttpError(400, exc.to_record())

        self.brownout.tick(len(self.queue))
        try:
            decision, brownout_stage = self.brownout.apply(decision)
        except ShedLoad as exc:
            self.n_jobs_rejected += 1
            raise HttpError(503, {
                "error": "brownout_shed",
                "stage": "shed",
                "retry_after_s": round(exc.retry_after_s, 3),
            }, headers={
                "Retry-After": str(max(1, round(exc.retry_after_s))),
            })

        admitted = decision.spec
        task = CampaignTask(
            kind=admitted.kind, params=admitted.params, seed=admitted.seed
        )
        deadline_at = None
        if admitted.deadline_ms is not None:
            deadline_at = self.wall() + admitted.deadline_ms / 1000.0
        job_id = f"j{self._next_job:08d}"
        self._next_job += 1
        job = Job(job_id, tenant, admitted, task.key, decision,
                  deadline_at=deadline_at)
        job.submitted_at = self.tenants.clock()

        entry = self.store.get(task.key)
        if entry is not None:
            # Content-addressed hit: answered without queue or worker.
            # The admission is journaled all the same -- the 200 reply
            # implies a durable record of what was promised and served.
            self._retain(job)
            self._journal_admit(job)
            job.on_event = self._journal_event
            self._emit_admission(job, brownout_stage)
            job.emit("cache_hit", tier="store")
            job.complete(entry["result"], served_from="cache")
            self.n_jobs_accepted += 1
            self.on_job_finished(job)
            return json_response(200, job.to_record())

        quota = self.tenants.config(tenant).max_result_bytes
        if quota is not None:
            used = self.store.tenant_bytes(tenant)
            if used >= quota:
                # Enforced at admission against bytes already stored, so
                # jobs in flight may overshoot by at most one backlog's
                # worth of results -- documented in docs/SERVICE.md.
                self.n_jobs_rejected += 1
                raise HttpError(429, {
                    "error": "quota_exceeded",
                    "tenant": tenant,
                    "used_bytes": used,
                    "max_result_bytes": quota,
                })

        try:
            self.queue.submit_nowait(tenant, job)
        except RateLimited as exc:
            self.n_jobs_rejected += 1
            raise HttpError(429, {
                "error": "rate_limited",
                "tenant": tenant,
                "retry_after_s": round(exc.retry_after_s, 3),
            })
        except BacklogFull as exc:
            self.n_jobs_rejected += 1
            raise HttpError(429, {
                "error": "backlog_full",
                "tenant": tenant,
                "max_backlog": exc.max_backlog,
            })
        # Journaled only *after* queue acceptance: a 429 must not leave
        # a durable admission behind to resurrect on replay.
        self._retain(job)
        self._journal_admit(job)
        job.on_event = self._journal_event
        self._emit_admission(job, brownout_stage)
        job.emit("queued", backlog=self.queue.core.backlog(tenant))
        self.n_jobs_accepted += 1
        return json_response(202, job.to_record(include_result=False))

    def _emit_admission(self, job: Job, brownout_stage: Optional[str]) -> None:
        job.emit("accepted", tenant=job.tenant, kind=job.spec.kind,
                 key=job.key)
        job.emit("admitted", **job.decision.to_record())
        if brownout_stage is not None:
            job.emit("brownout", stage=brownout_stage,
                     level=self.brownout.level)

    def _retain(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        self._job_order.append(job.job_id)
        while len(self._job_order) > self.config.max_jobs_retained:
            stale = self._job_order.pop(0)
            dropped = self.jobs.get(stale)
            if dropped is not None and dropped.state in ("done", "failed"):
                del self.jobs[stale]
            else:
                self._job_order.append(stale)  # still active: keep it
                break

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "ready": self.ready,
            "draining": self.draining,
            "jobs": {
                "accepted": self.n_jobs_accepted,
                "rejected": self.n_jobs_rejected,
                "retained": len(self.jobs),
                "completed_per_tenant": dict(
                    sorted(self.completed_per_tenant.items())
                ),
            },
            "queue": self.queue.core.to_record(),
            "store": self.store.to_record(),
            "workers": self.pool.to_record(),
            "tenants": self.tenants.to_record(),
            "brownout": self.brownout.to_record(),
            "journal": (
                self.journal.to_record() if self.journal is not None else None
            ),
            "recovery": self.recovery,
        }
