"""Shared content-addressed result store over the campaign cache.

The campaign's :class:`~repro.campaign.cache.ResultCache` already keys
results by the stable task hash (kind, params, seed, code version).
:class:`SharedResultStore` promotes it to the service's shared store:

* a **memory tier** in front of the disk tier, so a repeated request --
  from *any* tenant; the key is content-addressed, tenancy plays no
  part in identity -- is answered in microseconds without touching the
  filesystem or re-executing anything;
* the **disk tier** is the very same checksummed, sharded, atomically
  replaced cache the campaign runner writes, so the service and batch
  campaigns share warm results in both directions;
* per-tier hit/miss counters for the stats endpoint and benchmarks;
* **per-tenant byte accounting**: every :meth:`SharedResultStore.put`
  charges the canonical-JSON size of the stored *result* to the tenant
  whose job produced it, backing the ``max_result_bytes`` quota in
  :class:`~repro.service.tenants.TenantConfig` (enforced at submission
  with a structured 429).  Tenancy still plays no part in *identity*:
  any tenant reads any warm key; only the producer pays for it.

The memory tier is bounded (FIFO eviction at ``max_memory_entries``) so
a long-lived server cannot grow without bound; the disk tier remains
the full history.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..campaign.cache import ResultCache

__all__ = ["SharedResultStore", "result_size_bytes"]


def result_size_bytes(result: Any) -> int:
    """Canonical-JSON byte size of one stored result (quota unit)."""
    return len(json.dumps(result, sort_keys=True, default=str).encode("utf-8"))


class SharedResultStore:
    """Two-tier (memory + optional disk) store keyed by task hash."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_memory_entries: int = 4096,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        self.disk = ResultCache(cache_dir) if cache_dir else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.n_memory_hits = 0
        self.n_disk_hits = 0
        self.n_misses = 0
        self.n_puts = 0
        self.bytes_by_tenant: Dict[str, int] = {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Cached entry for ``key`` (memory first, then verified disk)."""
        entry = self._memory.get(key)
        if entry is not None:
            self.n_memory_hits += 1
            return entry
        if self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                self.n_disk_hits += 1
                self._remember(key, entry)
                return entry
        self.n_misses += 1
        return None

    def put(
        self, key: str, entry: Dict[str, Any], tenant: Optional[str] = None
    ) -> None:
        """Persist ``entry`` to both tiers (disk write is atomic).

        With a ``tenant``, the canonical-JSON size of the entry's
        ``result`` is charged against that tenant's stored-bytes
        account (the ``max_result_bytes`` quota unit).
        """
        self._remember(key, entry)
        if self.disk is not None:
            self.disk.put(key, entry)
        self.n_puts += 1
        if tenant is not None:
            self.bytes_by_tenant[tenant] = (
                self.bytes_by_tenant.get(tenant, 0)
                + result_size_bytes(entry.get("result"))
            )

    def tenant_bytes(self, tenant: str) -> int:
        """Result bytes stored on behalf of ``tenant`` so far."""
        return self.bytes_by_tenant.get(tenant, 0)

    def rebuild_tenant_bytes(self, attribution: Dict[str, str]) -> int:
        """Re-derive the per-tenant byte accounts from the disk tier.

        ``attribution`` maps store keys to the tenant whose job
        produced them (the journal knows; the content-addressed disk
        tier deliberately does not).  Each attributed key still present
        -- and checksum-clean -- in the persistent tier is re-charged
        to its producer, so ``max_result_bytes`` quotas survive a
        restart instead of silently resetting to zero.

        Returns the number of keys re-charged.  Keys whose entry has
        vanished (or failed its checksum and was evicted) cost nothing:
        the bytes are genuinely no longer stored.
        """
        if self.disk is None:
            return 0
        recharged = 0
        for key, tenant in attribution.items():
            entry = self.disk.get(key)
            if entry is None:
                continue
            self._remember(key, entry)
            self.bytes_by_tenant[tenant] = (
                self.bytes_by_tenant.get(tenant, 0)
                + result_size_bytes(entry.get("result"))
            )
            recharged += 1
        return recharged

    def _remember(self, key: str, entry: Dict[str, Any]) -> None:
        memory = self._memory
        if key in memory:
            memory.move_to_end(key)
        memory[key] = entry
        while len(memory) > self.max_memory_entries:
            memory.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self.disk is not None and key in self.disk
        )

    def to_record(self) -> Dict[str, Any]:
        return {
            "memory_entries": len(self._memory),
            "max_memory_entries": self.max_memory_entries,
            "disk": self.disk is not None,
            "n_memory_hits": self.n_memory_hits,
            "n_disk_hits": self.n_disk_hits,
            "n_misses": self.n_misses,
            "n_puts": self.n_puts,
            "bytes_by_tenant": dict(sorted(self.bytes_by_tenant.items())),
        }
