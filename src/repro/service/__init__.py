"""Approximate-compute-as-a-service: an async multi-tenant job front-end.

The campaign engine already behaves like a batch scheduler -- process
isolation, timeouts, retries, quarantine, a checksummed sharded result
cache.  This package puts a service on top of it so the library can face
many concurrent clients:

* :class:`ServiceApp` (:mod:`repro.service.app`) -- the asyncio
  HTTP/JSON application: job submission, status, stats, and per-job
  Server-Sent-Event streams, all on the stdlib (no framework).
* :class:`WeightedFairQueue` (:mod:`repro.service.queue`) -- per-tenant
  weighted-fair scheduling with token-bucket rate limits and a bounded
  backlog (overflow is a structured 429, never an unbounded queue).
* :class:`SharedResultStore` (:mod:`repro.service.store`) -- the
  campaign :class:`~repro.campaign.cache.ResultCache` promoted to a
  shared content-addressed store keyed by stable task hashes: identical
  requests from different tenants are answered in microseconds.
* :func:`negotiate` (:mod:`repro.service.admission`) -- QoS admission
  control: a request declares an error budget, the exact analytic PMF
  engine predicts in milliseconds whether the approximate configuration
  meets it, and requests that cannot are rewritten to the exact
  fallback before they ever run.
* :class:`WorkerPool` (:mod:`repro.service.workers`) -- the bridge onto
  :func:`repro.campaign.run_campaign`: single-flight deduplication per
  task hash, hardened execution (per-attempt process isolation,
  timeouts, quarantine) for jobs that request it.
* :class:`JobJournal` (:mod:`repro.service.journal`) -- the durable
  append-only admission/event log behind ``--state-dir``: a killed
  server replays it on restart and re-admits every job it had promised.
* :class:`BrownoutController` (:mod:`repro.service.brownout`) -- the
  overload ladder: degrade to cheaper approximate configurations, then
  to exact single-block twins, and only then shed with a 503.

``repro serve`` (see :mod:`repro.cli`) runs the server; the
deterministic in-process test harness lives under ``tests/service``.
"""

from .admission import AdmissionDecision, negotiate
from .app import ServiceApp, ServiceConfig
from .brownout import BrownoutController, ShedLoad, SloConfig
from .jobs import Job, JobEvent
from .journal import JobJournal, ReplayedJob, ReplayReport
from .queue import AsyncFairQueue, BacklogFull, RateLimited, WeightedFairQueue
from .schemas import SchemaError, validate_job_request
from .store import SharedResultStore
from .tenants import TenantConfig, TenantRegistry, TokenBucket
from .workers import WorkerPool

__all__ = [
    "AdmissionDecision",
    "AsyncFairQueue",
    "BacklogFull",
    "BrownoutController",
    "Job",
    "JobEvent",
    "JobJournal",
    "RateLimited",
    "ReplayReport",
    "ReplayedJob",
    "SchemaError",
    "ServiceApp",
    "ServiceConfig",
    "SharedResultStore",
    "ShedLoad",
    "SloConfig",
    "TenantConfig",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairQueue",
    "WorkerPool",
    "negotiate",
    "validate_job_request",
]
