"""Tenant policy: weights, token-bucket rate limits, backlog bounds.

A tenant is a named client class with three knobs:

* ``weight`` -- its share of the worker pool under contention (see
  :class:`~repro.service.queue.WeightedFairQueue`; a weight-4 tenant
  drains four jobs for every one of a weight-1 tenant).
* ``rate_per_s`` / ``burst`` -- a token bucket bounding its *admission*
  rate: bursts up to ``burst`` jobs, sustained at ``rate_per_s``.
* ``max_backlog`` -- how many of its jobs may sit queued at once; the
  overflow answer is a structured 429, never an unbounded queue.
* ``max_result_bytes`` -- optional cap on the tenant's footprint in the
  shared result store (canonical-JSON bytes of results its jobs
  stored); submissions past the cap answer 429 ``quota_exceeded``.

Everything is deterministic under an injected clock, so the rate-limit
invariants are property-testable without sleeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = ["TenantConfig", "TenantRegistry", "TokenBucket"]

Clock = Callable[[], float]


@dataclass(frozen=True)
class TenantConfig:
    """Admission and scheduling policy of one tenant."""

    name: str
    weight: float = 1.0
    rate_per_s: float = math.inf
    burst: int = 64
    max_backlog: int = 256
    max_result_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.weight > 0.0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if not self.rate_per_s > 0.0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_backlog < 1:
            raise ValueError(
                f"max_backlog must be >= 1, got {self.max_backlog}"
            )
        if self.max_result_bytes is not None and self.max_result_bytes < 1:
            raise ValueError(
                f"max_result_bytes must be >= 1 or None, "
                f"got {self.max_result_bytes}"
            )

    def to_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "weight": self.weight,
            "rate_per_s": (
                None if math.isinf(self.rate_per_s) else self.rate_per_s
            ),
            "burst": self.burst,
            "max_backlog": self.max_backlog,
            "max_result_bytes": self.max_result_bytes,
        }


class TokenBucket:
    """Deterministic token bucket: ``burst`` capacity, ``rate`` refill.

    Args:
        rate_per_s: Tokens added per second (``inf`` = unlimited).
        burst: Bucket capacity (also the initial fill).
        clock: Monotonic time source; injectable so tests can drive
            virtual time instead of sleeping.
    """

    def __init__(self, rate_per_s: float, burst: int, clock: Clock) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        if math.isinf(self.rate_per_s):
            self._tokens = float(self.burst)
        else:
            elapsed = max(0.0, now - self._updated)
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_s
            )
        self._updated = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        self._refill()
        if self._tokens + 1e-12 >= n:
            self._tokens -= n
            return True
        return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if now)."""
        self._refill()
        missing = n - self._tokens
        if missing <= 0.0:
            return 0.0
        if math.isinf(self.rate_per_s):
            return 0.0
        return missing / self.rate_per_s

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class TenantRegistry:
    """Known tenants plus the default policy for everyone else.

    Unknown tenant names are materialized on first contact with the
    ``default`` policy (renamed to the caller) -- an open service with
    per-name fairness, rather than a closed allowlist.
    """

    def __init__(
        self,
        tenants: Dict[str, TenantConfig] | None = None,
        default: TenantConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        import time

        self.clock: Clock = clock or time.monotonic
        self.default = default or TenantConfig(name="default")
        self._configs: Dict[str, TenantConfig] = dict(tenants or {})
        self._buckets: Dict[str, TokenBucket] = {}

    def config(self, name: str) -> TenantConfig:
        if name not in self._configs:
            base = self.default
            self._configs[name] = TenantConfig(
                name=name,
                weight=base.weight,
                rate_per_s=base.rate_per_s,
                burst=base.burst,
                max_backlog=base.max_backlog,
                max_result_bytes=base.max_result_bytes,
            )
        return self._configs[name]

    def bucket(self, name: str) -> TokenBucket:
        if name not in self._buckets:
            config = self.config(name)
            self._buckets[name] = TokenBucket(
                config.rate_per_s, config.burst, self.clock
            )
        return self._buckets[name]

    def names(self):
        return sorted(self._configs)

    def to_record(self) -> Dict[str, Any]:
        return {
            "default": self.default.to_record(),
            "tenants": {
                name: config.to_record()
                for name, config in sorted(self._configs.items())
            },
        }
