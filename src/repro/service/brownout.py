"""Overload brownout: principled degradation before any load shedding.

The paper's cross-layer argument is that quality/effort trade-offs
should be coordinated across the stack; :class:`QosGuard` already walks
an escalation ladder at the *resilience* layer.  This module is the
same idea at the *service* layer: when the deployment is saturated,
degrade the answers before refusing the questions.

:class:`BrownoutController` watches two load signals against a
declared SLO (:class:`SloConfig`):

* a per-kind **EWMA of end-to-end job latency** (queue wait +
  execution), updated on every job completion, and
* the **queue depth** at admission time,

and walks a four-level ladder with hysteresis (a breach must be
*sustained* for ``escalate_after_s`` to step up; recovery must be
sustained below ``recover_margin`` of the SLO for ``recover_after_s``
to step back down -- momentary spikes never flap the level):

========  ==================  =========================================
level     stage               admission effect
========  ==================  =========================================
0         ``normal``          none
1         ``cheaper_approx``  rewrite to a cheaper approximate config:
                              sampling params (``n_samples``) clamp to
                              ``brownout_samples`` and retries clamp to
                              one attempt -- cheaper *and* more
                              approximate, the cross-layer knob
2         ``exact_twin``      additionally, block-adder kinds are
                              rewritten to their exact single-block
                              twin -- for the PMF-convolution family a
                              single block is the *cheapest* possible
                              configuration (one trivial convolution)
3         ``shed``            refuse admission with a structured 503
                              and ``Retry-After`` (:class:`ShedLoad`)
========  ==================  =========================================

Every transition is appended to a structured log surfaced verbatim in
``/v1/stats`` so operators (and the ladder unit tests) can audit the
controller's behaviour after the fact.  Everything is deterministic
under an injected clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .admission import PREDICTABLE_KINDS, AdmissionDecision
from .schemas import JobSpec

__all__ = ["BrownoutController", "LEVELS", "ShedLoad", "SloConfig"]

#: Ladder stage names, by level.
LEVELS = ("normal", "cheaper_approx", "exact_twin", "shed")

Clock = Callable[[], float]


class ShedLoad(Exception):
    """Admission refused at brownout level 3; retry after a backoff."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"service overloaded; retry in {retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class SloConfig:
    """The service-level objective the brownout controller defends."""

    #: End-to-end latency target per job (queue wait + execution).
    target_latency_s: float = 2.0
    #: Queue depth past which admission pressure counts as a breach.
    max_queue_depth: int = 128
    #: Smoothing factor of the per-kind latency EWMA.
    ewma_alpha: float = 0.25
    #: A breach must persist this long before each escalation step.
    escalate_after_s: float = 3.0
    #: Recovery must persist this long before each step back down.
    recover_after_s: float = 10.0
    #: "Recovered" means below this fraction of the SLO thresholds
    #: (hysteresis band between breach and recovery).
    recover_margin: float = 0.5
    #: ``Retry-After`` answered with a level-3 shed.
    shed_retry_after_s: float = 1.0
    #: ``n_samples`` clamp applied from level 1 on.
    brownout_samples: int = 5000

    def __post_init__(self) -> None:
        if not self.target_latency_s > 0.0:
            raise ValueError(
                f"target_latency_s must be > 0, got {self.target_latency_s}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not 0.0 < self.recover_margin < 1.0:
            raise ValueError(
                f"recover_margin must be in (0, 1), got {self.recover_margin}"
            )

    def to_record(self) -> Dict[str, Any]:
        return {
            "target_latency_s": self.target_latency_s,
            "max_queue_depth": self.max_queue_depth,
            "ewma_alpha": self.ewma_alpha,
            "escalate_after_s": self.escalate_after_s,
            "recover_after_s": self.recover_after_s,
            "recover_margin": self.recover_margin,
            "shed_retry_after_s": self.shed_retry_after_s,
            "brownout_samples": self.brownout_samples,
        }


def _block_adder_width(params: Dict[str, Any]) -> Optional[int]:
    """Operand width of a block-adder params dict, if recognizable."""
    n = params.get("n")
    if isinstance(n, int) and n > 0:
        return n
    segments = params.get("segments")
    try:
        if isinstance(segments, str):
            return sum(
                int(part.split(":")[0]) for part in segments.split(",")
            )
        if isinstance(segments, (list, tuple)) and segments:
            return sum(int(seg[0]) for seg in segments)
    except (TypeError, ValueError, IndexError):
        return None
    return None


class BrownoutController:
    """SLO-guarded escalation ladder over service admissions."""

    def __init__(
        self,
        slo: Optional[SloConfig] = None,
        clock: Optional[Clock] = None,
        enabled: bool = True,
        max_transitions: int = 256,
    ) -> None:
        self.slo = slo or SloConfig()
        self.clock: Clock = clock or time.monotonic
        self.enabled = enabled
        self.max_transitions = max_transitions
        self.level = 0
        self.transitions: List[Dict[str, Any]] = []
        self.n_degraded = 0
        self.n_shed = 0
        self._latency_ewma: Dict[str, float] = {}
        self._breach_since: Optional[float] = None
        self._ok_since: Optional[float] = None

    # -- load signals --------------------------------------------------

    def observe_latency(self, kind: str, latency_s: float) -> None:
        """Fold one finished job's end-to-end latency into its kind's EWMA."""
        alpha = self.slo.ewma_alpha
        previous = self._latency_ewma.get(kind)
        if previous is None:
            self._latency_ewma[kind] = latency_s
        else:
            self._latency_ewma[kind] = (
                alpha * latency_s + (1.0 - alpha) * previous
            )

    def _breach(self, queue_depth: int) -> Optional[str]:
        """Reason string when the SLO is currently breached, else None."""
        if queue_depth > self.slo.max_queue_depth:
            return (
                f"queue depth {queue_depth} > {self.slo.max_queue_depth}"
            )
        for kind, ewma in sorted(self._latency_ewma.items()):
            if ewma > self.slo.target_latency_s:
                return (
                    f"latency EWMA[{kind}]={ewma:.3f}s > "
                    f"target {self.slo.target_latency_s}s"
                )
        return None

    def _recovered(self, queue_depth: int) -> bool:
        """Strictly inside the hysteresis band: safe to step back down."""
        margin = self.slo.recover_margin
        if queue_depth > self.slo.max_queue_depth * margin:
            return False
        return all(
            ewma <= self.slo.target_latency_s * margin
            for ewma in self._latency_ewma.values()
        )

    # -- ladder --------------------------------------------------------

    def tick(self, queue_depth: int) -> None:
        """Advance the hysteresis state machine one observation.

        Called at every admission and every job completion.  Escalation
        requires a breach sustained for ``escalate_after_s`` (the timer
        re-arms after each step, so a ladder climb takes one window per
        level); stepping down requires sustained recovery below the
        margin, one window per level.
        """
        if not self.enabled:
            return
        now = self.clock()
        reason = self._breach(queue_depth)
        if reason is not None:
            self._ok_since = None
            if self._breach_since is None:
                self._breach_since = now
            elif (
                now - self._breach_since >= self.slo.escalate_after_s
                and self.level < len(LEVELS) - 1
            ):
                self._transition(self.level + 1, reason, now)
                self._breach_since = now
            return
        self._breach_since = None
        if self.level == 0 or not self._recovered(queue_depth):
            self._ok_since = None
            return
        if self._ok_since is None:
            self._ok_since = now
        elif now - self._ok_since >= self.slo.recover_after_s:
            self._transition(self.level - 1, "sustained recovery", now)
            self._ok_since = now

    def _transition(self, level: int, reason: str, now: float) -> None:
        self.transitions.append({
            "at": round(now, 3),
            "from": LEVELS[self.level],
            "to": LEVELS[level],
            "reason": reason,
        })
        del self.transitions[:-self.max_transitions]
        self.level = level

    # -- admission effect ----------------------------------------------

    def apply(
        self, decision: AdmissionDecision
    ) -> Tuple[AdmissionDecision, Optional[str]]:
        """Degrade one negotiated admission per the current level.

        Returns ``(decision, stage)`` where ``stage`` is the brownout
        stage applied (``None`` at level 0).

        Raises:
            ShedLoad: At level 3 -- the caller answers a structured 503
                with ``Retry-After``.
        """
        if not self.enabled or self.level == 0:
            return decision, None
        if self.level >= 3:
            self.n_shed += 1
            raise ShedLoad(self.slo.shed_retry_after_s)
        stage = LEVELS[self.level]
        spec = self._degrade_spec(decision.spec)
        if spec is decision.spec:
            return decision, None
        self.n_degraded += 1
        detail = decision.detail
        suffix = f" [brownout: {stage}]"
        return replace(
            decision, spec=spec, detail=(detail + suffix).strip()
        ), stage

    def _degrade_spec(self, spec: JobSpec) -> JobSpec:
        params = dict(spec.params)
        changed = False
        n_samples = params.get("n_samples")
        if (
            isinstance(n_samples, int)
            and n_samples > self.slo.brownout_samples
        ):
            params["n_samples"] = self.slo.brownout_samples
            changed = True
        max_attempts = spec.max_attempts
        if max_attempts > 1:
            max_attempts = 1
            changed = True
        if self.level >= 2 and spec.kind in PREDICTABLE_KINDS:
            width = _block_adder_width(params)
            if width is not None and (
                params.get("r") != width or "segments" in params
            ):
                if "segments" in params:
                    params.pop("segments", None)
                    params["n"] = width
                params["r"], params["p"] = width, 0
                changed = True
        if not changed:
            return spec
        return replace(spec, params=params, max_attempts=max_attempts)

    # -- reporting -----------------------------------------------------

    def to_record(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "level": self.level,
            "stage": LEVELS[self.level],
            "slo": self.slo.to_record(),
            "latency_ewma_s": {
                kind: round(ewma, 4)
                for kind, ewma in sorted(self._latency_ewma.items())
            },
            "n_degraded": self.n_degraded,
            "n_shed": self.n_shed,
            "transitions": list(self.transitions[-20:]),
        }
