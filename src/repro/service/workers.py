"""Worker-pool bridge from the async service onto the campaign runner.

Each worker is an asyncio task draining the weighted-fair queue.  A
popped job is executed through :func:`repro.campaign.run_campaign` in a
worker thread (``asyncio.to_thread``), which buys the service every
hardening the batch path already has: jobs with a ``timeout_s`` run in
per-attempt *isolated processes* that can be reaped when they hang,
failures retry with deterministic backoff up to ``max_attempts``, and a
job that exhausts its attempts surfaces the campaign's structured
:class:`~repro.campaign.runner.TaskFailure` record -- the client sees a
``failed`` event with machine-readable attempts, never a stalled
stream.

**Single-flight deduplication**: jobs are content-addressed by their
stable task hash, so when several tenants submit the identical request
concurrently, the first popped job becomes the *leader* (it runs the
campaign task once) and the rest attach as *followers* awaiting the
leader's future.  Exactly one campaign execution happens per unique
key; the store then serves everyone else forever.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..campaign import CampaignTask, run_campaign

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ServiceApp
    from .jobs import Job

__all__ = ["WorkerPool"]


class WorkerPool:
    """N asyncio workers bridging the fair queue to the campaign runner."""

    def __init__(self, app: "ServiceApp", n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.app = app
        self.n_workers = n_workers
        self._tasks: List[asyncio.Task] = []
        self._inflight: Dict[str, asyncio.Future] = {}
        self.n_campaign_executions = 0
        self.n_dedupe_joins = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self, paused: bool = False) -> None:
        if self._tasks:
            raise RuntimeError("worker pool already started")
        if paused:
            self.app.queue.pause()
        self._tasks = [
            asyncio.create_task(self._worker_loop(i), name=f"svc-worker-{i}")
            for i in range(self.n_workers)
        ]

    def pause(self) -> None:
        """Stop dispatching new jobs (in-flight ones finish)."""
        self.app.queue.pause()

    def resume(self) -> None:
        self.app.queue.resume()

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    # -- execution -----------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        queue = self.app.queue
        while True:
            tenant, job = await queue.get()
            del tenant  # scheduling already accounted for the tenant
            try:
                await self._execute(job)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                job.fail({
                    "error": "internal",
                    "error_type": type(exc).__name__,
                    "message": str(exc)[:500],
                })
            finally:
                self.app.on_job_finished(job)

    async def _execute(self, job: "Job") -> None:
        store = self.app.store
        key = job.key

        entry = store.get(key)
        if entry is not None:
            job.emit("cache_hit", tier="store")
            job.complete(entry["result"], served_from="cache")
            return

        leader_future = self._inflight.get(key)
        if leader_future is not None:
            # Follower: identical request already executing.
            self.n_dedupe_joins += 1
            job.emit("deduplicated", key=key)
            result, failure = await leader_future
            if failure is None:
                job.complete(result, served_from="dedupe")
            else:
                job.fail(failure)
            return

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        job.mark_running()
        self.n_campaign_executions += 1
        try:
            result, failure = await asyncio.to_thread(
                self._run_one, job
            )
        except BaseException:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(RuntimeError("leader aborted"))
            raise
        if failure is None:
            store.put(key, {
                "task": self._task_for(job).as_dict(),
                "result": result,
                "elapsed_s": 0.0,
            })
            job.complete(result)
        else:
            job.fail(failure)
        self._inflight.pop(key, None)
        future.set_result((result, failure))

    def _task_for(self, job: "Job") -> CampaignTask:
        spec = job.decision.spec
        return CampaignTask(kind=spec.kind, params=spec.params, seed=spec.seed)

    def _run_one(
        self, job: "Job"
    ) -> Tuple[Any, Optional[Dict[str, Any]]]:
        """Blocking body: one hardened single-task campaign.

        Runs on a worker thread.  ``timeout_s`` forces per-attempt
        process isolation inside :func:`run_campaign`, so a wedged task
        is reaped there without stalling this thread forever.
        """
        spec = job.decision.spec
        task = self._task_for(job)
        result = run_campaign(
            [task],
            n_workers=1,
            cache_dir=None,  # the SharedResultStore owns persistence
            timeout_s=spec.timeout_s,
            max_attempts=spec.max_attempts,
            backoff_base_s=0.05,
            backoff_max_s=1.0,
        )
        if result.ok:
            return result.results[0], None
        failure = result.failures[0].to_record()
        failure["error"] = "task_failed"
        return None, failure

    def to_record(self) -> Dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "running": not self.app.queue.paused,
            "inflight": len(self._inflight),
            "n_campaign_executions": self.n_campaign_executions,
            "n_dedupe_joins": self.n_dedupe_joins,
        }
