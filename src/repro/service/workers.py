"""Worker-pool bridge from the async service onto the campaign engines.

Each worker is an asyncio task draining the weighted-fair queue.  A
popped job executes in a worker thread (``asyncio.to_thread``) on one
of two engines:

* the **warm engine** (default): a persistent pre-forked
  :class:`~repro.campaign.warmpool.WarmPool` shared by all workers.
  Each job is one pipe round-trip to an already-imported worker
  process -- no per-job ``multiprocessing`` spawn -- with the same
  hardened semantics the batch path has: a job with a ``timeout_s``
  that wedges its warm worker gets the worker SIGKILLed and respawned,
  failures retry with deterministic backoff up to ``max_attempts``,
  and exhausted jobs surface the campaign's structured
  :class:`~repro.campaign.runner.TaskFailure` record.
* **process-per-attempt** (``isolation="process"``, and always for
  ``chaos_*`` kinds): the classic
  :func:`repro.campaign.run_campaign` path where every attempt gets a
  fresh worker process.  Chaos kinds stay here by design -- a task
  written to contaminate its interpreter should never share one.

**Single-flight deduplication**: jobs are content-addressed by their
stable task hash, so when several tenants submit the identical request
concurrently, the first popped job becomes the *leader* (it runs the
campaign task once) and the rest attach as *followers* awaiting the
leader's future.  Exactly one campaign execution happens per unique
key; the store then serves everyone else forever.

**Draining shutdown**: :meth:`WorkerPool.stop` pauses dispatch, gives
in-flight jobs a bounded grace period to finish, then cancels the
workers and fails every job still queued or in flight with a terminal
``shutdown`` event -- an SSE subscriber always sees its stream
terminate, never a silent drop.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..campaign import CampaignTask, run_campaign
from ..campaign.warmpool import WarmPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ServiceApp
    from .jobs import Job

__all__ = ["WorkerPool"]


class WorkerPool:
    """N asyncio workers bridging the fair queue to the campaign engines."""

    def __init__(
        self,
        app: "ServiceApp",
        n_workers: int = 2,
        isolation: str = "warm",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if isolation not in ("warm", "process"):
            raise ValueError(
                f"isolation must be 'warm' or 'process', got {isolation!r}"
            )
        self.app = app
        self.n_workers = n_workers
        self.isolation = isolation
        self.warm: Optional[WarmPool] = None
        self._tasks: List[asyncio.Task] = []
        self._inflight: Dict[str, asyncio.Future] = {}
        self._busy: Dict[str, "Job"] = {}
        self.n_campaign_executions = 0
        self.n_dedupe_joins = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self, paused: bool = False) -> None:
        if self._tasks:
            raise RuntimeError("worker pool already started")
        if paused:
            self.app.queue.pause()
        if self.isolation == "warm":
            self.warm = WarmPool(n_workers=self.n_workers).start()
        self._tasks = [
            asyncio.create_task(self._worker_loop(i), name=f"svc-worker-{i}")
            for i in range(self.n_workers)
        ]

    def pause(self) -> None:
        """Stop dispatching new jobs (in-flight ones finish)."""
        self.app.queue.pause()

    def resume(self) -> None:
        self.app.queue.resume()

    async def stop(self, grace_s: Optional[float] = None) -> None:
        """Drain, then tear down: no job's event stream is left dangling.

        1. Pause dispatch so nothing new starts.
        2. Give in-flight jobs up to ``grace_s`` (default: the app's
           ``shutdown_grace_s``) to reach a terminal state.
        3. Cancel the worker tasks and close the warm pool.
        4. Fail every job still queued or in flight with a terminal
           ``shutdown`` failure, flushing the ``failed`` SSE event to
           any subscriber.
        """
        if grace_s is None:
            grace_s = getattr(self.app.config, "shutdown_grace_s", 5.0)
        self.app.queue.pause()
        draining = [
            job for job in self._busy.values() if not job.done.is_set()
        ]
        if draining and grace_s > 0.0:
            waits = asyncio.gather(
                *(job.done.wait() for job in draining),
                return_exceptions=True,
            )
            try:
                await asyncio.wait_for(waits, timeout=grace_s)
            except asyncio.TimeoutError:
                pass
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self.warm is not None:
            self.warm.close()
        # Flush still-queued jobs: they never reached a worker loop, so
        # terminal accounting happens here.
        while True:
            popped = self.app.queue.core.pop()
            if popped is None:
                break
            _, job = popped
            job.fail({
                "error": "shutdown",
                "message": "service stopped before the job ran",
            })
            self.app.on_job_finished(job)
        # In-flight jobs that outlived the grace period: their worker
        # loop already accounted them on cancellation (its ``finally``
        # also popped them from ``_busy``, so iterate the drain list);
        # just terminate the stream.
        for job in draining:
            if not job.done.is_set():
                job.fail({
                    "error": "shutdown",
                    "message": "service stopped during execution",
                })
        self._busy.clear()
        self._inflight.clear()

    # -- execution -----------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        queue = self.app.queue
        while True:
            tenant, job = await queue.get()
            del tenant  # scheduling already accounted for the tenant
            self._busy[job.job_id] = job
            try:
                await self._execute(job)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                job.fail({
                    "error": "internal",
                    "error_type": type(exc).__name__,
                    "message": str(exc)[:500],
                })
            finally:
                self._busy.pop(job.job_id, None)
                self.app.on_job_finished(job)

    async def _execute(self, job: "Job") -> None:
        store = self.app.store
        key = job.key

        if self._past_deadline(job):
            # The job aged out while queued: fail fast instead of
            # burning a worker on an answer that is already too late.
            job.fail({
                "error": "deadline_exceeded",
                "stage": "queue_wait",
                "deadline_at": job.deadline_at,
            })
            return

        entry = store.get(key)
        if entry is not None:
            job.emit("cache_hit", tier="store")
            job.complete(entry["result"], served_from="cache")
            return

        leader_future = self._inflight.get(key)
        if leader_future is not None:
            # Follower: identical request already executing.
            self.n_dedupe_joins += 1
            job.emit("deduplicated", key=key)
            result, failure = await leader_future
            if failure is None:
                job.complete(result, served_from="dedupe")
            else:
                job.fail(failure)
            return

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        job.mark_running()
        self.n_campaign_executions += 1
        deadline_s = self._remaining(job)
        try:
            result, failure = await asyncio.to_thread(
                self._run_one, job, deadline_s
            )
        except BaseException:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(RuntimeError("leader aborted"))
                future.exception()  # may have no follower to retrieve it
            raise
        if failure is not None and self._past_deadline(job):
            failure = {
                "error": "deadline_exceeded",
                "stage": "execution",
                "deadline_at": job.deadline_at,
                "task_failure": failure,
            }
        if failure is None:
            store.put(key, {
                "task": self._task_for(job).as_dict(),
                "result": result,
                "elapsed_s": 0.0,
            }, tenant=job.tenant)
            job.complete(result)
        else:
            job.fail(failure)
        self._inflight.pop(key, None)
        future.set_result((result, failure))

    def _task_for(self, job: "Job") -> CampaignTask:
        spec = job.decision.spec
        return CampaignTask(kind=spec.kind, params=spec.params, seed=spec.seed)

    def _past_deadline(self, job: "Job") -> bool:
        return (
            job.deadline_at is not None
            and self.app.wall() >= job.deadline_at
        )

    def _remaining(self, job: "Job") -> Optional[float]:
        """Wall-clock budget left before the job's deadline (``None``=∞)."""
        if job.deadline_at is None:
            return None
        return max(0.0, job.deadline_at - self.app.wall())

    def _run_one(
        self, job: "Job", deadline_s: Optional[float] = None
    ) -> Tuple[Any, Optional[Dict[str, Any]]]:
        """Blocking body: one hardened task execution on a worker thread.

        Non-chaos kinds ride the warm pool (one pipe round-trip on a
        persistent worker; hung workers are recycled there).  Chaos
        kinds -- and everything when ``isolation="process"`` -- run the
        classic single-task campaign with per-attempt process spawns.
        ``deadline_s`` (remaining end-to-end budget, net of queue wait)
        caps both engines so a deadlined job can never outlive its
        promise.
        """
        spec = job.decision.spec
        task = self._task_for(job)
        if self.warm is not None and not spec.kind.startswith("chaos_"):
            result, task_failure = self.warm.execute(
                task,
                timeout_s=spec.timeout_s,
                max_attempts=spec.max_attempts,
                backoff_base_s=0.05,
                backoff_max_s=1.0,
                deadline_s=deadline_s,
            )
            if task_failure is None:
                return result, None
            failure = task_failure.to_record()
            failure["error"] = "task_failed"
            return None, failure
        result = run_campaign(
            [task],
            n_workers=1,
            cache_dir=None,  # the SharedResultStore owns persistence
            timeout_s=spec.timeout_s,
            max_attempts=spec.max_attempts,
            backoff_base_s=0.05,
            backoff_max_s=1.0,
            isolation="process",
            deadline_s=deadline_s,
        )
        if result.ok:
            return result.results[0], None
        failure = result.failures[0].to_record()
        failure["error"] = "task_failed"
        return None, failure

    def to_record(self) -> Dict[str, Any]:
        record = {
            "n_workers": self.n_workers,
            "isolation": self.isolation,
            "running": not self.app.queue.paused,
            "inflight": len(self._inflight),
            "n_campaign_executions": self.n_campaign_executions,
            "n_dedupe_joins": self.n_dedupe_joins,
        }
        if self.warm is not None:
            record["warm"] = self.warm.to_record()
        return record
