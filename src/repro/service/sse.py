"""Server-Sent-Events encoding for job streams.

The wire format is the standard ``text/event-stream``: each event is

.. code-block:: text

    id: <seq>
    event: <type>
    data: <one-line JSON>
    <blank line>

The event ``id`` is the job's event-log sequence number, so a client
reconnecting with ``Last-Event-ID`` resumes exactly where it stopped
(:meth:`repro.service.jobs.Job.stream` replays the log past that
position, then follows live).  Streams always terminate after a
``completed`` or ``failed`` event -- no observer is ever left holding
an open connection to a job that already resolved.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .jobs import JobEvent

__all__ = ["format_event", "parse_stream"]


def format_event(event: JobEvent) -> bytes:
    """Encode one job event as an SSE frame."""
    data = json.dumps(event.data, sort_keys=True, separators=(",", ":"))
    return (
        f"id: {event.seq}\nevent: {event.event}\ndata: {data}\n\n"
    ).encode("utf-8")


def parse_stream(raw: bytes) -> List[Dict]:
    """Decode an SSE byte stream back into event dicts (for tests/clients).

    Returns ``[{"id": int | None, "event": str, "data": ...}, ...]`` in
    stream order; unknown fields are ignored per the SSE spec.
    """
    events: List[Dict] = []
    for frame in raw.decode("utf-8").split("\n\n"):
        if not frame.strip():
            continue
        event_id: Optional[int] = None
        event_type = "message"
        data_lines: List[str] = []
        for line in frame.splitlines():
            if line.startswith("id:"):
                event_id = int(line[3:].strip())
            elif line.startswith("event:"):
                event_type = line[6:].strip()
            elif line.startswith("data:"):
                data_lines.append(line[5:].strip())
        data = json.loads("\n".join(data_lines)) if data_lines else None
        events.append({"id": event_id, "event": event_type, "data": data})
    return events


def replay_frames(events: Iterable[JobEvent], after: int = -1) -> bytes:
    """Concatenated frames for already-logged events past ``after``."""
    return b"".join(
        format_event(event) for event in events if event.seq > after
    )
