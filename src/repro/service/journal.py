"""Durable append-only job journal: the service's crash-safety log.

Every admission the service answers with a 2xx is a promise; a process
crash must not silently revoke it.  :class:`JobJournal` keeps that
promise on disk:

* **Append-only segmented JSONL** -- records are one line each,
  ``<crc32-hex8> <canonical-json>``, appended to numbered segment files
  (``seg-00000001.jsonl``, ...) under ``<state-dir>/journal/``.  A
  segment rolls over at :attr:`JobJournal.segment_bytes`; nothing is
  ever rewritten in place.
* **Durability classes** -- admission records and terminal job events
  (``completed`` / ``failed``) are fsync'd before the caller proceeds
  (so a 202 response implies a durable admission and a 200 implies a
  durable outcome); intermediate events ride the same ordered stream
  but are only flushed to the OS, and every durable append flushes the
  whole prefix before it.
* **CRC-checked replay** -- :meth:`JobJournal.replay` re-derives the
  complete job table.  A corrupt line (failed CRC, bad JSON) is
  skipped and counted; a corrupt *final* line of the *final* segment is
  a torn tail from the crash itself and is tolerated silently.  Event
  replay keeps only each job's contiguous sequence prefix, so a hole
  punched by mid-file corruption can never fabricate history after the
  hole: the job simply rolls back to its last provably-complete state
  and the service re-admits it (the content-addressed store plus
  single-flight dedupe make the re-run execute-at-most-once).
* **Compaction** -- :meth:`JobJournal.compact` snapshots the live job
  table into a single fresh segment and then unlinks the older ones.
  The snapshot is written and fsync'd *before* anything is deleted and
  replay is idempotent (duplicate admits and duplicate event sequence
  numbers are dropped, first occurrence wins), so a crash at any point
  during compaction replays to the same table.

The journal knows nothing about HTTP, queues, or workers -- it stores
and replays records.  :class:`~repro.service.app.ServiceApp` decides
what to record and how to act on a replayed table.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["JobJournal", "ReplayedJob", "ReplayReport", "encode_record",
           "decode_record"]

#: Events that end a job's stream (mirrors ``jobs.TERMINAL_EVENTS``
#: without importing the asyncio-flavored module from this sync one).
_TERMINAL = ("completed", "failed")

_SEG_PREFIX = "seg-"
_SEG_SUFFIX = ".jsonl"


def encode_record(record: Dict[str, Any]) -> bytes:
    """One journal line: ``<crc32 of payload, 8 hex chars> <json>\\n``."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + payload + b"\n"


def decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one journal line; ``None`` if torn, corrupt, or malformed."""
    line = line.rstrip(b"\n")
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class ReplayedJob:
    """One job as re-derived from the journal."""

    job_id: str
    tenant: str
    spec: Dict[str, Any]
    key: str
    decision: Dict[str, Any]
    deadline_at: Optional[float] = None
    #: Contiguous event prefix ``[(seq, event, data), ...]`` from seq 0.
    events: List[Tuple[int, str, Dict[str, Any]]] = field(
        default_factory=list
    )

    @property
    def terminal(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """``(event, data)`` of the terminal event, if one survived."""
        for seq, event, data in self.events:
            if event in _TERMINAL:
                return event, data
        return None


@dataclass
class ReplayReport:
    """The outcome of one journal replay."""

    jobs: Dict[str, ReplayedJob] = field(default_factory=dict)
    n_segments: int = 0
    n_records: int = 0
    n_corrupt: int = 0      # CRC/JSON-bad lines skipped mid-stream
    n_torn: int = 0         # bad final line of the final segment
    n_duplicate: int = 0    # idempotent re-application (compaction overlap)
    n_orphan_events: int = 0  # events whose admit record did not survive
    n_dropped_events: int = 0  # events past a per-job sequence hole
    elapsed_s: float = 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "jobs": len(self.jobs),
            "n_segments": self.n_segments,
            "n_records": self.n_records,
            "n_corrupt": self.n_corrupt,
            "n_torn": self.n_torn,
            "n_duplicate": self.n_duplicate,
            "n_orphan_events": self.n_orphan_events,
            "n_dropped_events": self.n_dropped_events,
            "replay_ms": round(self.elapsed_s * 1e3, 2),
        }


class JobJournal:
    """Segmented, CRC-checked, fsync'd journal of job admissions/events.

    Args:
        directory: Journal directory (created if missing); segments are
            ``seg-<n>.jsonl`` files inside it.
        segment_bytes: Roll to a new segment once the current one
            exceeds this size.
        fsync: Whether durable appends call ``os.fsync``.  Leave on in
            production; tests and benchmarks may disable it (records
            still reach the OS immediately -- the file is unbuffered --
            so a *process* kill loses nothing either way, only a power
            cut could).
        compact_segments: :meth:`should_compact` answers ``True`` past
            this many segments.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        segment_bytes: int = 4 << 20,
        fsync: bool = True,
        compact_segments: int = 8,
    ) -> None:
        if segment_bytes < 1024:
            raise ValueError(
                f"segment_bytes must be >= 1024, got {segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.compact_segments = compact_segments
        self._fh = None
        self._segment_path: Optional[Path] = None
        self._segment_size = 0
        self._next_segment = self._scan_next_segment()
        self.n_appends = 0
        self.n_fsyncs = 0
        self.n_compactions = 0

    # -- segment bookkeeping -------------------------------------------

    def segments(self) -> List[Path]:
        """Existing segment files, oldest first."""
        return sorted(
            p for p in self.directory.glob(f"{_SEG_PREFIX}*{_SEG_SUFFIX}")
            if p.name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)].isdigit()
        )

    def _scan_next_segment(self) -> int:
        existing = self.segments()
        if not existing:
            return 1
        last = existing[-1].name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)]
        return int(last) + 1

    def _segment_name(self, index: int) -> Path:
        return self.directory / f"{_SEG_PREFIX}{index:08d}{_SEG_SUFFIX}"

    def _open_segment(self) -> None:
        path = self._segment_name(self._next_segment)
        self._next_segment += 1
        # Unbuffered append: every write is one syscall, so even
        # non-durable records survive a SIGKILL (they sit in the OS
        # page cache, not in a userspace buffer).
        self._fh = open(path, "ab", buffering=0)
        self._segment_path = path
        self._segment_size = path.stat().st_size

    # -- appending -----------------------------------------------------

    def append(self, record: Dict[str, Any], durable: bool = False) -> None:
        """Append one record; with ``durable``, fsync before returning."""
        if self._fh is None or self._segment_size >= self.segment_bytes:
            if self._fh is not None:
                self._sync()
                self._fh.close()
            self._open_segment()
        line = encode_record(record)
        self._fh.write(line)
        self._segment_size += len(line)
        self.n_appends += 1
        if durable:
            self._sync()

    def _sync(self) -> None:
        if self.fsync and self._fh is not None:
            os.fsync(self._fh.fileno())
            self.n_fsyncs += 1

    def log_admit(
        self,
        job_id: str,
        tenant: str,
        spec: Dict[str, Any],
        key: str,
        decision: Dict[str, Any],
        deadline_at: Optional[float] = None,
    ) -> None:
        """Durably record one accepted admission (before it is answered)."""
        self.append({
            "t": "admit",
            "job": job_id,
            "tenant": tenant,
            "spec": spec,
            "key": key,
            "decision": decision,
            "deadline_at": deadline_at,
        }, durable=True)

    def log_event(
        self, job_id: str, seq: int, event: str, data: Dict[str, Any]
    ) -> None:
        """Record one job event; terminal events are durable."""
        self.append({
            "t": "event",
            "job": job_id,
            "seq": seq,
            "event": event,
            "data": data,
        }, durable=event in _TERMINAL)

    # -- replay --------------------------------------------------------

    def replay(self) -> ReplayReport:
        """Re-derive the job table from every segment on disk."""
        start = time.perf_counter()
        report = ReplayReport()
        seen_seqs: Dict[str, set] = {}
        segments = self.segments()
        report.n_segments = len(segments)
        for seg_index, path in enumerate(segments):
            last_segment = seg_index == len(segments) - 1
            lines = path.read_bytes().split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()
            for line_index, line in enumerate(lines):
                record = decode_record(line)
                if record is None:
                    if last_segment and line_index == len(lines) - 1:
                        report.n_torn += 1  # torn tail: the crash itself
                    else:
                        report.n_corrupt += 1
                    continue
                report.n_records += 1
                self._apply(record, report, seen_seqs)
        for job in report.jobs.values():
            report.n_dropped_events += self._trim_events(job)
        report.elapsed_s = time.perf_counter() - start
        return report

    @staticmethod
    def _apply(
        record: Dict[str, Any],
        report: ReplayReport,
        seen_seqs: Dict[str, set],
    ) -> None:
        kind = record.get("t")
        if kind == "admit":
            job_id = record.get("job")
            if not isinstance(job_id, str):
                report.n_corrupt += 1
                return
            if job_id in report.jobs:
                report.n_duplicate += 1  # compaction overlap: first wins
                return
            report.jobs[job_id] = ReplayedJob(
                job_id=job_id,
                tenant=record.get("tenant", "public"),
                spec=record.get("spec", {}),
                key=record.get("key", ""),
                decision=record.get("decision", {}),
                deadline_at=record.get("deadline_at"),
            )
            seen_seqs[job_id] = set()
        elif kind == "event":
            job_id = record.get("job")
            job = report.jobs.get(job_id) if isinstance(job_id, str) else None
            if job is None:
                report.n_orphan_events += 1
                return
            seq = record.get("seq")
            if not isinstance(seq, int) or seq < 0:
                report.n_corrupt += 1
                return
            if seq in seen_seqs[job_id]:
                report.n_duplicate += 1
                return
            seen_seqs[job_id].add(seq)
            job.events.append(
                (seq, record.get("event", ""), record.get("data", {}))
            )
        else:
            report.n_corrupt += 1

    @staticmethod
    def _trim_events(job: ReplayedJob) -> int:
        """Keep only the contiguous event prefix from seq 0; count drops."""
        job.events.sort(key=lambda entry: entry[0])
        keep: List[Tuple[int, str, Dict[str, Any]]] = []
        for expected, entry in enumerate(job.events):
            if entry[0] != expected:
                break
            keep.append(entry)
        dropped = len(job.events) - len(keep)
        job.events = keep
        return dropped

    # -- compaction ----------------------------------------------------

    def should_compact(self) -> bool:
        return len(self.segments()) > self.compact_segments

    def compact(self, jobs: Iterable[ReplayedJob]) -> int:
        """Snapshot ``jobs`` into one fresh segment; drop older segments.

        Crash-safe: the snapshot is fully written and fsync'd under a
        temporary name, renamed into place (so replay never sees a
        partial snapshot as authoritative -- a torn snapshot line is
        just a torn line), and only then are the pre-snapshot segments
        unlinked.  A crash in between leaves snapshot + old segments,
        which replay reconciles idempotently.

        Returns the number of segments removed.
        """
        old_segments = self.segments()
        if self._fh is not None:
            self._sync()
            self._fh.close()
            self._fh = None
            self._segment_path = None
        snapshot = self._segment_name(self._next_segment)
        self._next_segment += 1
        tmp = snapshot.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            for job in jobs:
                fh.write(encode_record({
                    "t": "admit",
                    "job": job.job_id,
                    "tenant": job.tenant,
                    "spec": job.spec,
                    "key": job.key,
                    "decision": job.decision,
                    "deadline_at": job.deadline_at,
                }))
                for seq, event, data in job.events:
                    fh.write(encode_record({
                        "t": "event",
                        "job": job.job_id,
                        "seq": seq,
                        "event": event,
                        "data": data,
                    }))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
                self.n_fsyncs += 1
        os.replace(tmp, snapshot)
        removed = 0
        for path in old_segments:
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        self.n_compactions += 1
        return removed

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._sync()
            self._fh.close()
            self._fh = None
            self._segment_path = None

    def abandon(self) -> None:
        """Drop the handle without syncing (test hook simulating kill -9)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._segment_path = None

    def to_record(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "segments": len(self.segments()),
            "segment_bytes": self.segment_bytes,
            "fsync": self.fsync,
            "n_appends": self.n_appends,
            "n_fsyncs": self.n_fsyncs,
            "n_compactions": self.n_compactions,
        }
