"""Job lifecycle: states, structured events, and SSE subscriptions.

A :class:`Job` is one admitted request travelling through the service:

``queued -> running -> done | failed``

(with ``done`` reachable directly for cache hits).  Every transition
appends a :class:`JobEvent` to the job's ordered event log.  The log is
the single source of truth for observers: the SSE endpoint *replays* it
from any position and then follows live appends through per-subscriber
queues, so a client that connects after completion sees exactly the
same stream as one that watched from the start -- deterministic,
gap-free, terminated by a ``completed`` or ``failed`` event.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Dict, List, Optional

from .admission import AdmissionDecision
from .schemas import JobSpec

__all__ = ["Job", "JobEvent", "TERMINAL_EVENTS"]

#: Event types that end a job's stream.
TERMINAL_EVENTS = ("completed", "failed")


@dataclass(frozen=True)
class JobEvent:
    """One entry of a job's ordered event log."""

    seq: int
    event: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {"seq": self.seq, "event": self.event, "data": dict(self.data)}


class Job:
    """One admitted job and its observable history."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        spec: JobSpec,
        key: str,
        decision: AdmissionDecision,
        deadline_at: Optional[float] = None,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.spec = spec
        self.key = key
        self.decision = decision
        #: Absolute wall-clock deadline (epoch seconds); ``None`` means
        #: unbounded.  Wall time (not monotonic) so it survives restart.
        self.deadline_at = deadline_at
        self.state = "queued"
        self.result: Any = None
        self.failure: Optional[Dict[str, Any]] = None
        self.served_from: Optional[str] = None  # "cache" | "dedupe" | None
        self.recovered = False  # replayed from the journal after restart
        self.submitted_at: Optional[float] = None  # monotonic, for latency
        self.events: List[JobEvent] = []
        self.done = asyncio.Event()
        #: Write-through sink (the app's journal hook); called with
        #: every appended event *before* subscriber fan-out, so a
        #: terminal event is durable before any observer can see it.
        self.on_event: Optional[Callable[["Job", JobEvent], None]] = None
        self._subscribers: List[asyncio.Queue] = []

    # -- event log -----------------------------------------------------

    def emit(self, event: str, **data: Any) -> JobEvent:
        """Append one event and fan it out to live subscribers.

        Sequence numbers continue from the restored log on a recovered
        job, so SSE clients resuming with ``Last-Event-ID`` across a
        restart see one gap-free, monotonic stream.
        """
        entry = JobEvent(seq=len(self.events), event=event, data=data)
        self.events.append(entry)
        if self.on_event is not None:
            self.on_event(self, entry)
        for queue in self._subscribers:
            queue.put_nowait(entry)
        return entry

    def restore_events(
        self, events: List[JobEvent]
    ) -> None:
        """Install a replayed event log (contiguous from seq 0), silently.

        Used only during journal recovery -- nothing is re-journaled
        and there are no subscribers yet.
        """
        self.events = list(events)
        self.recovered = True

    # -- transitions ---------------------------------------------------

    def mark_running(self) -> None:
        self.state = "running"
        self.emit("started", key=self.key)

    def complete(self, result: Any, served_from: Optional[str] = None) -> None:
        if self.done.is_set():
            return  # already terminal (e.g. failed during shutdown drain)
        self.state = "done"
        self.result = result
        self.served_from = served_from
        data: Dict[str, Any] = {"state": "done"}
        if served_from:
            data["served_from"] = served_from
        qos = self.qos_summary()
        if qos is not None:
            data["qos"] = qos
        self.emit("completed", **data)
        self.done.set()

    def fail(self, failure: Dict[str, Any]) -> None:
        if self.done.is_set():
            return  # terminal transitions are one-shot
        self.state = "failed"
        self.failure = failure
        self.emit("failed", state="failed", failure=failure)
        self.done.set()

    def qos_summary(self) -> Optional[Dict[str, Any]]:
        """Admission mode plus any runtime degradation, for responses."""
        if self.decision.qos is None:
            return None
        summary: Dict[str, Any] = {
            "mode": self.decision.mode,
            "error_budget": self.decision.qos.error_budget,
            "metric": self.decision.qos.metric,
        }
        record = self.result if isinstance(self.result, dict) else {}
        runtime = record.get("qos") if isinstance(record.get("qos"), dict) \
            else None
        if runtime is not None:
            summary["final_stage"] = runtime.get("final_stage")
            summary["degraded_to_exact"] = runtime.get("degraded_to_exact")
        return summary

    # -- subscriptions -------------------------------------------------

    async def stream(self, after: int = -1) -> AsyncIterator[JobEvent]:
        """Replay events past ``after`` (seq), then follow live ones.

        Terminates after yielding a terminal event, so SSE streams end
        instead of stalling -- even for jobs that failed or were served
        from cache long before the subscriber arrived.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        try:
            seen = after
            for entry in list(self.events):
                if entry.seq > seen:
                    seen = entry.seq
                    yield entry
                    if entry.event in TERMINAL_EVENTS:
                        return
            while True:
                entry = await queue.get()
                if entry.seq <= seen:
                    continue
                seen = entry.seq
                yield entry
                if entry.event in TERMINAL_EVENTS:
                    return
        finally:
            self._subscribers.remove(queue)

    # -- reporting -----------------------------------------------------

    def to_record(self, include_result: bool = True) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "kind": self.spec.kind,
            "key": self.key,
            "seed": self.spec.seed,
            "admission": self.decision.to_record(),
            "served_from": self.served_from,
            "n_events": len(self.events),
            "deadline_at": self.deadline_at,
            "recovered": self.recovered,
        }
        qos = self.qos_summary()
        if qos is not None:
            record["qos"] = qos
        if include_result:
            record["result"] = self.result
            record["failure"] = self.failure
        return record
