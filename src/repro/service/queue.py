"""Per-tenant weighted-fair queueing with rate limits and bounded backlog.

:class:`WeightedFairQueue` is a synchronous, completely deterministic
scheduler core (start-time fair queuing): every submitted item gets a
*virtual finish tag* ``max(V, last_finish[tenant]) + cost / weight``
where ``V`` is the virtual time (the finish tag of the last item
dispatched), and :meth:`pop` always dispatches the smallest tag, ties
broken by submission order.  The consequences, which the property suite
pins down:

* **conservation** -- every accepted item is dispatched exactly once;
* **per-tenant FIFO** -- a tenant's items leave in submission order;
* **weighted fairness** -- under saturation a weight-``w`` tenant
  receives a ``w``-proportional share of dispatches;
* **monotonicity** -- raising a tenant's weight never demotes any of
  its items' dispatch positions.

Admission is guarded before an item ever enters the heap: a token
bucket per tenant (:class:`~repro.service.tenants.TokenBucket`) answers
sustained overload with :class:`RateLimited` (carrying ``retry_after_s``)
and the bounded per-tenant backlog answers burst overload with
:class:`BacklogFull`.  Both map to structured 429 responses upstream.

:class:`AsyncFairQueue` wraps the core for the asyncio service: same
semantics, plus ``await``-able :meth:`AsyncFairQueue.get`.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from .tenants import TenantRegistry

__all__ = [
    "AsyncFairQueue",
    "BacklogFull",
    "RateLimited",
    "WeightedFairQueue",
]


class RateLimited(Exception):
    """Tenant exceeded its sustained admission rate; retry later."""

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        super().__init__(
            f"tenant {tenant!r} rate-limited; retry in {retry_after_s:.3f}s"
        )
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class BacklogFull(Exception):
    """Tenant's bounded backlog is full; shed load instead of queueing."""

    def __init__(self, tenant: str, max_backlog: int) -> None:
        super().__init__(
            f"tenant {tenant!r} backlog full ({max_backlog} queued)"
        )
        self.tenant = tenant
        self.max_backlog = max_backlog


class WeightedFairQueue:
    """Deterministic start-time fair queue over a tenant registry."""

    def __init__(self, tenants: TenantRegistry) -> None:
        self.tenants = tenants
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._seq = 0
        self._virtual = 0.0
        self._last_finish: Dict[str, float] = {}
        self._backlog: Dict[str, int] = {}
        self.n_submitted = 0
        self.n_dispatched = 0
        self.n_rejected_rate = 0
        self.n_rejected_backlog = 0

    # -- admission -----------------------------------------------------

    def submit(
        self, tenant: str, item: Any, cost: float = 1.0, charge: bool = True
    ) -> int:
        """Admit one item for ``tenant``; returns its submission sequence.

        ``charge=False`` bypasses the token bucket and backlog bound --
        reserved for journal-replay requeues of jobs that already paid
        admission in a previous process life (restart recovery must
        never re-toll, and never shed, a promise the service already
        made).

        Raises:
            RateLimited: The tenant's token bucket is empty.
            BacklogFull: The tenant already has ``max_backlog`` queued.
        """
        if cost <= 0.0:
            raise ValueError(f"cost must be > 0, got {cost}")
        config = self.tenants.config(tenant)
        if charge:
            if self._backlog.get(tenant, 0) >= config.max_backlog:
                self.n_rejected_backlog += 1
                raise BacklogFull(tenant, config.max_backlog)
            bucket = self.tenants.bucket(tenant)
            if not bucket.try_acquire():
                self.n_rejected_rate += 1
                raise RateLimited(tenant, bucket.retry_after_s())
        start = max(self._virtual, self._last_finish.get(tenant, 0.0))
        finish = start + cost / config.weight
        self._last_finish[tenant] = finish
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (finish, seq, tenant, item))
        self._backlog[tenant] = self._backlog.get(tenant, 0) + 1
        self.n_submitted += 1
        return seq

    # -- dispatch ------------------------------------------------------

    def pop(self) -> Optional[Tuple[str, Any]]:
        """Dispatch the item with the smallest virtual finish tag."""
        if not self._heap:
            return None
        finish, _, tenant, item = heapq.heappop(self._heap)
        self._virtual = max(self._virtual, finish)
        self._backlog[tenant] -= 1
        self.n_dispatched += 1
        return tenant, item

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def backlog(self, tenant: str) -> int:
        return self._backlog.get(tenant, 0)

    def to_record(self) -> Dict[str, Any]:
        return {
            "queued": len(self),
            "n_submitted": self.n_submitted,
            "n_dispatched": self.n_dispatched,
            "n_rejected_rate": self.n_rejected_rate,
            "n_rejected_backlog": self.n_rejected_backlog,
            "backlog": {
                tenant: depth
                for tenant, depth in sorted(self._backlog.items())
                if depth
            },
        }


class AsyncFairQueue:
    """Asyncio wrapper: same scheduling core, awaitable consumption."""

    def __init__(self, tenants: TenantRegistry) -> None:
        import asyncio

        self.core = WeightedFairQueue(tenants)
        self._wakeup = asyncio.Condition()
        self._paused = False

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Hold all dispatch (admission continues; the heap builds up)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._notify()

    def submit_nowait(
        self, tenant: str, item: Any, cost: float = 1.0, charge: bool = True
    ) -> int:
        """Synchronous admission (raises like the core); wakes a getter."""
        seq = self.core.submit(tenant, item, cost, charge=charge)
        self._notify()
        return seq

    def _notify(self) -> None:
        import asyncio

        async def wake() -> None:
            async with self._wakeup:
                self._wakeup.notify_all()

        # submit_nowait runs on the event-loop thread, so scheduling a
        # task (instead of awaiting) keeps it usable from sync handlers.
        asyncio.get_running_loop().create_task(wake())

    async def get(self) -> Tuple[str, Any]:
        """Wait for, then dispatch, the next weighted-fair item.

        Honors :meth:`pause` strictly: while paused, nothing is popped
        even if items keep arriving.
        """
        async with self._wakeup:
            while True:
                if not self._paused:
                    entry = self.core.pop()
                    if entry is not None:
                        return entry
                await self._wakeup.wait()

    def __len__(self) -> int:
        return len(self.core)
