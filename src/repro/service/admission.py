"""QoS admission control: predict quality analytically, then commit.

A request may declare an error budget -- "best effort at <= 1% error,
else exact".  For block-adder job families the exact PMF-convolution
engine (:func:`repro.errors.analytic.predict_error_statistics`) answers
in milliseconds whether the requested approximate configuration meets
that budget, **without running anything**:

* prediction meets the budget -> admit the approximate configuration
  as-is (``mode="approximate"``); the prediction is exact, so this is a
  guarantee, not a bet (see ``tests/service/test_admission_properties``
  for the exhaustive cross-check).
* prediction violates the budget -> rewrite the job to the exact
  single-block fallback before it ever runs (``mode="exact_fallback"``).
  The exact configuration has error 0, so a declared budget is always
  satisfiable -- negotiation can degrade a request, never refuse it.

Job kinds the analytic engine cannot predict (media pipelines,
multipliers, ...) fall through to runtime enforcement: ``resilience``
jobs with a QosGuard ladder are admitted ``mode="guarded"`` (the
escalation ladder ends at the golden path, surfacing
``degraded_to_exact`` in the result), and everything else is admitted
unchanged (``mode="as_declared"``) with the declaration echoed back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors.analytic import predict_error_statistics
from .schemas import JobSpec, QosSpec, SchemaError

__all__ = ["AdmissionDecision", "PREDICTABLE_KINDS", "negotiate"]

#: Kinds whose params name a block-adder configuration the analytic
#: engine can predict exactly at admission time.
PREDICTABLE_KINDS = ("analytic", "gear_dse_row", "gear_adder", "gear_mc_chunk")

#: Widths past this are refused for analytic prediction (the DP stays
#: millisecond-fast well beyond, but doubles lose exactness ~N=26).
MAX_PREDICT_WIDTH = 26


@dataclass(frozen=True)
class AdmissionDecision:
    """The negotiated outcome of one job admission."""

    mode: str  # "approximate" | "exact_fallback" | "guarded" | "as_declared"
    spec: JobSpec
    qos: Optional[QosSpec] = None
    predicted: Dict[str, float] = field(default_factory=dict)
    prediction_us: float = 0.0
    detail: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "qos": self.qos.to_record() if self.qos else None,
            "predicted": dict(self.predicted),
            "prediction_us": round(self.prediction_us, 1),
            "detail": self.detail,
        }

    @classmethod
    def from_record(
        cls, record: Dict[str, Any], spec: JobSpec
    ) -> "AdmissionDecision":
        """Rebuild a decision from :meth:`to_record` (journal replay).

        The spec is re-attached from its own journaled record rather
        than re-negotiated, so a recovered job keeps exactly the
        admission it was answered with -- including any brownout
        rewrite active at its original admission.
        """
        qos = record.get("qos")
        return cls(
            mode=record.get("mode", "as_declared"),
            spec=spec,
            qos=QosSpec(
                error_budget=float(qos["error_budget"]),
                metric=qos.get("metric", "error_rate"),
            ) if qos else None,
            predicted=dict(record.get("predicted", {})),
            prediction_us=float(record.get("prediction_us", 0.0)),
            detail=record.get("detail", ""),
        )


def _exact_fallback_spec(spec: JobSpec, width: int) -> JobSpec:
    """Rewrite a block-adder job to its exact single-block twin."""
    params = dict(spec.params)
    if "segments" in params:
        params["segments"] = [[width, 0]]
    else:
        params["r"], params["p"] = width, 0
    return JobSpec(
        kind=spec.kind,
        params=params,
        seed=spec.seed,
        qos=spec.qos,
        timeout_s=spec.timeout_s,
        max_attempts=spec.max_attempts,
        deadline_ms=spec.deadline_ms,
    )


def negotiate(spec: JobSpec) -> AdmissionDecision:
    """Negotiate one validated job's QoS before it reaches the queue.

    Raises:
        SchemaError: The QoS declaration names a predictable kind but
            its params do not form a valid block-adder configuration.
    """
    if spec.qos is None:
        return AdmissionDecision(mode="as_declared", spec=spec,
                                 detail="no QoS declared")

    if spec.kind == "resilience" and spec.params.get("qos"):
        return AdmissionDecision(
            mode="guarded",
            spec=spec,
            qos=spec.qos,
            detail=(
                "runtime QosGuard escalation ladder enforces the budget; "
                "degraded_to_exact is reported per request"
            ),
        )

    if spec.kind not in PREDICTABLE_KINDS:
        return AdmissionDecision(
            mode="as_declared",
            spec=spec,
            qos=spec.qos,
            detail=f"kind {spec.kind!r} has no analytic predictor",
        )

    start = time.perf_counter()
    try:
        predicted = predict_error_statistics(spec.params)
    except (ValueError, TypeError) as exc:
        raise SchemaError(
            f"qos declared but params are not a valid block-adder "
            f"configuration: {exc}",
            "params",
        )
    if predicted["n"] > MAX_PREDICT_WIDTH:
        raise SchemaError(
            f"analytic prediction supports widths <= {MAX_PREDICT_WIDTH}, "
            f"got n={int(predicted['n'])}",
            "params",
        )
    prediction_us = (time.perf_counter() - start) * 1e6

    metric_value = predicted[spec.qos.metric]
    if metric_value <= spec.qos.error_budget:
        return AdmissionDecision(
            mode="approximate",
            spec=spec,
            qos=spec.qos,
            predicted=predicted,
            prediction_us=prediction_us,
            detail=(
                f"predicted {spec.qos.metric}={metric_value:.6g} <= "
                f"budget {spec.qos.error_budget:.6g}"
            ),
        )
    width = int(predicted["n"])
    return AdmissionDecision(
        mode="exact_fallback",
        spec=_exact_fallback_spec(spec, width),
        qos=spec.qos,
        predicted=predicted,
        prediction_us=prediction_us,
        detail=(
            f"predicted {spec.qos.metric}={metric_value:.6g} > "
            f"budget {spec.qos.error_budget:.6g}; "
            f"rewritten to exact single-block adder (n={width})"
        ),
    )
