"""Minimal asyncio HTTP/1.1 layer (stdlib only, no framework).

Just enough HTTP for a JSON job API plus SSE streaming: request-line +
headers + ``Content-Length`` bodies on the way in; status + headers +
body (or an unbounded ``text/event-stream``) on the way out.

Connections are **persistent** (HTTP/1.1 keep-alive with sequential
pipelining): a client may send many requests down one connection and
read the same number of ``Content-Length``-framed responses back, which
removes a connection setup/teardown from every job on the service hot
path.  The negotiation rules:

* HTTP/1.1 requests keep the connection open unless they carry
  ``Connection: close``; HTTP/1.0 requests close unless they carry
  ``Connection: keep-alive``.
* **Framing-level** errors (truncated head, missing or bad
  ``Content-Length`` -- 400/411/413) poison the byte stream, so their
  error response always carries ``Connection: close`` and the
  connection ends.  **Dispatch-level** errors (404, 405, 429, ...)
  leave the framing intact and keep the connection alive.
* SSE streams (``text/event-stream``) are unframed and terminate their
  connection; :data:`MAX_REQUESTS_PER_CONNECTION` bounds how long any
  single connection can monopolize a handler task.

The transport is abstracted to *any* object with ``write`` /
``drain`` / ``close`` -- the production server passes a real
:class:`asyncio.StreamWriter`, while the in-process test harness passes
a buffer-backed stub, so every handler path is exercised without
opening sockets (one loopback smoke test covers the real-socket path).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ServiceApp

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "SSEStream",
    "handle_connection",
    "json_response",
    "read_request",
    "serve",
    "sockname",
]

#: Upper bound on request bodies (1 MiB) and on the header block.
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 32 * 1024

#: Requests served over one keep-alive connection before the server
#: closes it (bounds per-connection state and handler-task lifetime).
MAX_REQUESTS_PER_CONNECTION = 1000

#: Methods whose requests carry a body and therefore must declare
#: ``Content-Length`` (411 otherwise -- the parser never guesses framing).
_BODY_METHODS = ("POST", "PUT", "PATCH")

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with an error status.

    ``framing=True`` marks errors raised while *parsing* the request:
    the byte stream is unrecoverable past them, so the connection
    closes after the error response.  Dispatch-level errors keep a
    keep-alive connection open.
    """

    def __init__(
        self,
        status: int,
        body: Dict[str, Any],
        framing: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(f"HTTP {status}")
        self.status = status
        self.body = body
        self.framing = framing
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def json(self) -> Any:
        """Decoded JSON body; raises :class:`HttpError` 400 on garbage."""
        if not self.body:
            raise HttpError(400, {"error": "bad_request",
                                  "message": "empty body; JSON expected"})
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, {"error": "bad_request",
                                  "message": f"invalid JSON: {exc}"})

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether this request asks to keep the connection open.

        HTTP/1.1 defaults to persistent unless ``Connection: close``;
        HTTP/1.0 defaults to closing unless ``Connection: keep-alive``.
        """
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass
class Response:
    """A buffered (non-streaming) HTTP response."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool = False) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("utf-8")
        return head + self.body


def json_response(
    status: int, payload: Any, headers: Optional[Dict[str, str]] = None
) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers or {}))


@dataclass
class SSEStream:
    """Handler sentinel: stream this job's events instead of a body."""

    job: Any  # repro.service.jobs.Job
    after: int = -1


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on a closed connection.

    Raises:
        HttpError: 400 on malformed framing, 411 on bodied requests
            without a usable ``Content-Length``, 413 on oversized heads
            or bodies.  All carry ``framing=True`` -- the byte stream
            cannot be re-synchronized past them, so the connection must
            close after answering.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF before any bytes: client went away
        raise HttpError(400, {"error": "bad_request",
                              "message": "truncated request head"},
                        framing=True)
    except asyncio.LimitOverrunError:
        raise HttpError(413, {"error": "too_large",
                              "message": "request head too large"},
                        framing=True)
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, {"error": "too_large",
                              "message": "request head too large"},
                        framing=True)
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, {"error": "bad_request",
                              "message": f"malformed request line {lines[0]!r}"},
                        framing=True)
    method, target, version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, {"error": "bad_request",
                                  "message": f"malformed header {line!r}"},
                            framing=True)
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    method = method.upper()
    if "transfer-encoding" in headers:
        raise HttpError(411, {
            "error": "length_required",
            "message": "Transfer-Encoding is not supported; "
                       "send a Content-Length body",
        }, framing=True)
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, {"error": "bad_request",
                                  "message": "bad Content-Length"},
                            framing=True)
        if n < 0:
            raise HttpError(400, {"error": "bad_request",
                                  "message": "bad Content-Length"},
                            framing=True)
        if n > MAX_BODY_BYTES:
            raise HttpError(413, {"error": "too_large",
                                  "message": f"body exceeds {MAX_BODY_BYTES}"},
                            framing=True)
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise HttpError(400, {"error": "bad_request",
                                      "message": "truncated body"},
                                framing=True)
    elif method in _BODY_METHODS:
        # Without a declared length the parser would have to guess
        # where this request's body ends and the next request begins;
        # answer 411 instead of hanging on a read or mis-framing.
        raise HttpError(411, {
            "error": "length_required",
            "message": f"{method} requires a Content-Length header",
        }, framing=True)
    return Request(method=method, path=path, query=query,
                   headers=headers, body=body, version=version)


async def _write_sse(writer: Any, stream: SSEStream) -> None:
    """Stream a job's events until a terminal event closes the stream."""
    from .sse import format_event

    head = (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n\r\n"
    ).encode("utf-8")
    writer.write(head)
    await writer.drain()
    async for event in stream.job.stream(after=stream.after):
        writer.write(format_event(event))
        await writer.drain()


async def handle_connection(
    app: "ServiceApp", reader: asyncio.StreamReader, writer: Any
) -> None:
    """Serve one connection: sequential requests until close/EOF/error.

    ``writer`` only needs ``write`` / ``drain`` / ``close`` (and
    optionally ``wait_closed``), so asyncio transport stubs work.
    """
    try:
        for served in range(1, MAX_REQUESTS_PER_CONNECTION + 1):
            try:
                request = await read_request(reader)
            except HttpError as exc:
                # Framing error: the stream cannot be trusted past it.
                writer.write(
                    json_response(exc.status, exc.body, exc.headers).encode(
                        keep_alive=False
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            keep_alive = (
                request.keep_alive and served < MAX_REQUESTS_PER_CONNECTION
            )
            try:
                outcome = await app.dispatch(request)
            except HttpError as exc:
                if exc.framing:
                    keep_alive = False
                outcome = json_response(exc.status, exc.body, exc.headers)
            except Exception as exc:  # noqa: BLE001 - connection must answer
                keep_alive = False  # handler state is suspect: bail out
                outcome = json_response(
                    500,
                    {"error": "internal", "error_type": type(exc).__name__,
                     "message": str(exc)[:500]},
                )
            if isinstance(outcome, SSEStream):
                # SSE is unframed: it owns the rest of the connection.
                await _write_sse(writer, outcome)
                return
            writer.write(outcome.encode(keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        pass  # client vanished mid-answer; nothing to salvage
    finally:
        try:
            writer.close()
            wait_closed = getattr(writer, "wait_closed", None)
            if wait_closed is not None:
                await wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(
    app: "ServiceApp", host: str = "127.0.0.1", port: int = 8080
) -> asyncio.AbstractServer:
    """Bind the app on a real socket; returns the asyncio server."""

    async def on_connection(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        await handle_connection(app, reader, writer)

    return await asyncio.start_server(on_connection, host=host, port=port)


def sockname(server: asyncio.AbstractServer) -> Tuple[str, int]:
    """(host, port) the server actually bound (port 0 resolves here)."""
    sock = server.sockets[0]
    name = sock.getsockname()
    return name[0], name[1]
