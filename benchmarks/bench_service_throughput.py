"""Service front-end throughput: cached hits, fan-in, and engine ratio.

Drives the approximate-compute service entirely in-process (the same
transport-stub path as ``tests/service``): a real ``ServiceApp`` with
its worker pool, fair queue, and shared store, minus socket noise, so
the numbers isolate the service stack itself.  Clients speak HTTP/1.1
**keep-alive**: many requests are pipelined down one connection and
each response is read back by its ``Content-Length`` frame, exactly
like a reusing client library would.

Measured:

* **cached-hit latency** -- microseconds for a POST /v1/jobs answered
  200 straight from the content-addressed memory tier;
* **keep-alive pipelining** -- the same cached hits batched down a
  single persistent connection, in responses/s;
* **throughput at 32 concurrent clients** -- 32 unique jobs across 4
  tenants, submitted concurrently and drained by the pool, in jobs/s;
* **dedupe fan-in** -- 32 concurrent *identical* jobs: one campaign
  execution, everyone served;
* **hardened engine ratio** -- the same 32 unique jobs *with a
  per-task ``timeout_s``* (the hardened path) drained twice: once on
  ``isolation="process"`` (a fresh worker process per attempt) and
  once on the default warm persistent pool.  Both runs use identical
  keep-alive clients, so the ratio isolates the execution engine.

Smoke gates (kept deliberately loose for CI containers): a cached hit
answers in under 50 ms, the 32-client drain sustains >= 5 jobs/s, the
dedupe fan-in executes exactly once, and the warm engine drains the
hardened sweep >= 2x faster than process-per-attempt.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.http import handle_connection
from repro.service.tenants import TenantConfig

from _util import emit

N_CLIENTS = 32
N_TENANTS = 4
N_HIT_SAMPLES = 200
PIPELINE_DEPTH = 8
HARDENED_TIMEOUT_S = 10.0

GATE_CACHED_HIT_MS = 50.0
GATE_JOBS_PER_S = 5.0
GATE_WARM_SPEEDUP = 2.0


class _SinkWriter:
    def __init__(self) -> None:
        self.buffer = bytearray()
        self.closed = False

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        return None


def _post(payload: dict, tenant: str) -> bytes:
    body = json.dumps(payload).encode()
    head = (
        f"POST /v1/jobs HTTP/1.1\r\nHost: bench\r\nX-Tenant: {tenant}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    return head.encode() + body


def _split_responses(raw: bytes) -> list:
    """Parse back-to-back Content-Length-framed responses into JSON."""
    out = []
    view = bytes(raw)
    while view:
        head, sep, rest = view.partition(b"\r\n\r\n")
        if not sep:
            break
        length = 0
        for line in head.decode("latin-1").split("\r\n"):
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        out.append(json.loads(rest[:length]))
        view = rest[length:]
    return out


async def _pipelined(app: ServiceApp, raws: list) -> list:
    """Send many requests down ONE keep-alive connection; parse all."""
    reader = asyncio.StreamReader()
    for raw in raws:
        reader.feed_data(raw)
    reader.feed_eof()
    writer = _SinkWriter()
    await handle_connection(app, reader, writer)
    responses = _split_responses(bytes(writer.buffer))
    assert len(responses) == len(raws), (
        f"pipelined {len(raws)} requests, parsed {len(responses)} responses"
    )
    return responses


async def _request(app: ServiceApp, raw: bytes) -> dict:
    return (await _pipelined(app, [raw]))[0]


def _hardened_submits(seed_base: int) -> list:
    return [
        _post(
            {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
             "seed": seed_base + i, "timeout_s": HARDENED_TIMEOUT_S},
            tenant=f"t{i % N_TENANTS}",
        )
        for i in range(N_CLIENTS)
    ]


def _tenants() -> dict:
    return {
        f"t{i}": TenantConfig(name=f"t{i}", weight=float(1 << i))
        for i in range(N_TENANTS)
    }


async def _drain_hardened(isolation: str, seed_base: int) -> float:
    """32 unique hardened jobs over keep-alive pipelines; wall seconds."""
    app = ServiceApp(ServiceConfig(
        n_workers=4, tenants=_tenants(), isolation=isolation,
    ))
    await app.start()
    try:
        submits = _hardened_submits(seed_base)
        chunks = [
            submits[i:i + PIPELINE_DEPTH]
            for i in range(0, len(submits), PIPELINE_DEPTH)
        ]
        start = time.perf_counter()
        accepted = await asyncio.gather(*(
            _pipelined(app, chunk) for chunk in chunks
        ))
        flat = [a for chunk in accepted for a in chunk]
        await asyncio.gather(*(
            app.jobs[a["job_id"]].done.wait() for a in flat
        ))
        wall_s = time.perf_counter() - start
        for a in flat:
            job = app.jobs[a["job_id"]]
            assert job.state == "done", (isolation, job.to_record())
    finally:
        await app.stop()
    return wall_s


async def bench() -> list:
    app = ServiceApp(ServiceConfig(n_workers=4, tenants=_tenants()))
    await app.start()
    rows = []
    try:
        # -- throughput: 32 unique jobs, 4 tenants, drained by the pool
        submits = [
            _post(
                {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
                 "seed": 7000 + i},
                tenant=f"t{i % N_TENANTS}",
            )
            for i in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        accepted = await asyncio.gather(*(
            _request(app, raw) for raw in submits
        ))
        await asyncio.gather(*(
            app.jobs[a["job_id"]].done.wait() for a in accepted
        ))
        drain_s = time.perf_counter() - start
        unique_jobs_per_s = N_CLIENTS / drain_s
        rows.append({
            "metric": "unique_32_clients",
            "jobs": N_CLIENTS,
            "wall_s": round(drain_s, 4),
            "jobs_per_s": round(unique_jobs_per_s, 1),
            "executions": app.pool.n_campaign_executions,
        })

        # -- dedupe fan-in: 32 identical jobs, one execution
        before = app.pool.n_campaign_executions
        identical = [
            _post(
                {"kind": "analytic", "params": {"n": 12, "r": 3, "p": 3},
                 "seed": 1},
                tenant=f"t{i % N_TENANTS}",
            )
            for i in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        accepted = await asyncio.gather(*(
            _request(app, raw) for raw in identical
        ))
        await asyncio.gather(*(
            app.jobs[a["job_id"]].done.wait() for a in accepted
        ))
        fanin_s = time.perf_counter() - start
        fanin_execs = app.pool.n_campaign_executions - before
        rows.append({
            "metric": "dedupe_32_identical",
            "jobs": N_CLIENTS,
            "wall_s": round(fanin_s, 4),
            "jobs_per_s": round(N_CLIENTS / fanin_s, 1),
            "executions": fanin_execs,
        })

        # -- cached-hit latency: repeat POSTs served 200 from memory
        warm = _post(
            {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
             "seed": 7000},
            tenant="t0",
        )
        laps = []
        for _ in range(N_HIT_SAMPLES):
            start = time.perf_counter()
            response = await _request(app, warm)
            laps.append(time.perf_counter() - start)
            assert response["served_from"] == "cache", response
        hit_us = [lap * 1e6 for lap in laps]
        rows.append({
            "metric": "cached_hit_latency",
            "samples": N_HIT_SAMPLES,
            "median_us": round(statistics.median(hit_us), 1),
            "p95_us": round(sorted(hit_us)[int(0.95 * len(hit_us))], 1),
            "mean_us": round(statistics.fmean(hit_us), 1),
        })

        # -- keep-alive pipelining: the same hits, one connection
        start = time.perf_counter()
        responses = await _pipelined(app, [warm] * N_HIT_SAMPLES)
        pipeline_s = time.perf_counter() - start
        assert all(r["served_from"] == "cache" for r in responses)
        rows.append({
            "metric": "keepalive_pipelined_hits",
            "samples": N_HIT_SAMPLES,
            "wall_s": round(pipeline_s, 4),
            "responses_per_s": round(N_HIT_SAMPLES / pipeline_s, 1),
        })
    finally:
        await app.stop()

    # -- hardened engine ratio: identical sweep, both engines ----------
    process_s = await _drain_hardened("process", seed_base=9000)
    warm_s = await _drain_hardened("warm", seed_base=9000)
    speedup = process_s / warm_s if warm_s > 0 else float("inf")
    rows.append({
        "metric": "hardened_32_process",
        "jobs": N_CLIENTS,
        "wall_s": round(process_s, 4),
        "jobs_per_s": round(N_CLIENTS / process_s, 1),
    })
    rows.append({
        "metric": "hardened_32_warm",
        "jobs": N_CLIENTS,
        "wall_s": round(warm_s, 4),
        "jobs_per_s": round(N_CLIENTS / warm_s, 1),
        "speedup": round(speedup, 2),
    })

    # -- smoke gates -----------------------------------------------------
    assert rows[1]["executions"] == 1, (
        f"dedupe fan-in must execute once, got {rows[1]['executions']}"
    )
    median_ms = rows[2]["median_us"] / 1e3
    assert median_ms < GATE_CACHED_HIT_MS, (
        f"cached hit median {median_ms:.2f} ms >= {GATE_CACHED_HIT_MS} ms"
    )
    assert unique_jobs_per_s >= GATE_JOBS_PER_S, (
        f"throughput {unique_jobs_per_s:.1f} jobs/s < {GATE_JOBS_PER_S}"
    )
    assert speedup >= GATE_WARM_SPEEDUP, (
        f"hardened warm speedup {speedup:.2f}x < gate {GATE_WARM_SPEEDUP}x "
        f"(process {process_s:.3f}s vs warm {warm_s:.3f}s)"
    )
    return rows


def main() -> None:
    rows = asyncio.run(bench())
    width = max(len(r["metric"]) for r in rows)
    lines = [
        f"{r['metric']:<{width}}  "
        + "  ".join(
            f"{k}={v}" for k, v in r.items() if k != "metric"
        )
        for r in rows
    ]
    emit(
        "service_throughput",
        "\n".join(lines),
        data=rows,
        config={
            "n_clients": N_CLIENTS,
            "n_tenants": N_TENANTS,
            "n_hit_samples": N_HIT_SAMPLES,
            "pipeline_depth": PIPELINE_DEPTH,
            "hardened_timeout_s": HARDENED_TIMEOUT_S,
            "gate_cached_hit_ms": GATE_CACHED_HIT_MS,
            "gate_jobs_per_s": GATE_JOBS_PER_S,
            "gate_warm_speedup": GATE_WARM_SPEEDUP,
        },
    )


if __name__ == "__main__":
    main()
