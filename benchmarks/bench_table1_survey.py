"""Reproduction of Table I / Table II: the survey taxonomy."""

from __future__ import annotations

from repro.characterization.report import format_records, format_table
from repro.survey.taxonomy import (
    TABLE_I,
    TABLE_II,
    Category,
    Layer,
    category_layer_matrix,
)

from _util import emit


def render_survey():
    table1_rows = [
        {
            "layer": t.layer.value,
            "category": t.category.value,
            "refs": " ".join(t.references),
            "motivation": t.motivation,
            "case_study": t.case_study[:40],
            "cross_layer": "yes" if t.cross_layer else "no",
        }
        for t in TABLE_I
    ]
    table2_rows = [
        {"category": c.value, "definition": TABLE_II[c][:70]} for c in Category
    ]
    matrix = category_layer_matrix()
    matrix_rows = [
        [c.value] + [matrix[c][layer] for layer in Layer] for c in Category
    ]
    return table1_rows, table2_rows, matrix_rows


def test_table1_survey(benchmark):
    table1_rows, table2_rows, matrix_rows = benchmark(render_survey)
    text = "\n\n".join(
        [
            format_records(table1_rows, title="Table I: techniques per layer"),
            format_records(table2_rows, title="Table II: classification"),
            format_table(
                ["category"] + [layer.value for layer in Layer],
                matrix_rows,
                title="Category x layer coverage",
            ),
        ]
    )
    emit(
        "table1_survey",
        text,
        data={
            "table1_rows": table1_rows,
            "table2_rows": table2_rows,
            "matrix_rows": matrix_rows,
        },
    )
    assert len(table1_rows) == 12
    assert len(table2_rows) == 5
    # Functional approximation spans all three layers (the paper's core
    # cross-layer observation).
    functional = [r for r in matrix_rows if "functional" in r[0]]
    assert all(count > 0 for count in functional[0][1:])
