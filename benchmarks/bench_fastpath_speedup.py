"""Fast-path vs legacy-loop wall-clock on the Fig. 6 / 8 / 9 kernels.

Times the arithmetic kernels behind the paper's architecture-level
experiments under both evaluation engines (``eval_mode="auto"`` vs
``"loop"``), verifies the results are bit-identical, and records the
speedups under ``benchmarks/results/fastpath_speedup.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.accelerators.sad import SADAccelerator
from repro.characterization.report import format_records
from repro.media.synthetic import moving_sequence
from repro.multipliers.recursive import RecursiveMultiplier
from repro.video.codec import HevcLiteEncoder
from repro.video.motion import sad_surface

from _util import emit


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _fig6_kernel(eval_mode, a, b):
    """Fig. 6 hot path: one batched 8x8 recursive multiply."""
    mul = RecursiveMultiplier(
        8, leaf_mul="ApxMulOur", adder_fa="ApxFA1", adder_approx_lsbs=4,
        eval_mode=eval_mode,
    )
    mul.multiply(a[:4], b[:4])  # warm-up: compile LUTs outside the timer
    return _timed(lambda: mul.multiply(a, b))


def _gather_fig8_batch(cur, ref, block_size=8, search=4):
    """Every (block, displacement) candidate pair of the frame, stacked
    into one batch -- the Fig. 8 surface sweep as a single vectorized
    accelerator call."""
    h, w = cur.shape
    blocks, cands = [], []
    for by in range(search, h - block_size - search + 1, block_size):
        for bx in range(search, w - block_size - search + 1, block_size):
            block = cur[by : by + block_size, bx : bx + block_size].reshape(-1)
            for dy in range(-search, search + 1):
                for dx in range(-search, search + 1):
                    cand = ref[
                        by + dy : by + dy + block_size,
                        bx + dx : bx + dx + block_size,
                    ].reshape(-1)
                    blocks.append(block)
                    cands.append(cand)
    return np.asarray(blocks), np.asarray(cands)


def _fig8_kernel(eval_mode, cur, ref):
    """Down-scaled Fig. 8: ApxSAD1 surfaces of every block of the frame
    (8x8 blocks, +-4 search), scored in one batched SAD call."""
    acc = SADAccelerator(n_pixels=64, fa="ApxFA1", approx_lsbs=4,
                         eval_mode=eval_mode)
    a, b = _gather_fig8_batch(cur, ref)
    acc.sad(a[:8], b[:8])  # warm-up: compile LUTs outside the timer
    return _timed(lambda: acc.sad(a, b))


def _fig9_kernel(eval_mode, frames):
    """Down-scaled Fig. 9: one ApxSAD2 HEVC-lite encode."""
    acc = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=4,
                         eval_mode=eval_mode)
    encoder = HevcLiteEncoder(search_range=2, qp=4)
    result, seconds = _timed(lambda: encoder.encode(frames, acc))
    return result.total_bits, seconds


def sweep_speedups():
    rng = np.random.default_rng(7)
    a = rng.integers(0, 256, 200_000)
    b = rng.integers(0, 256, 200_000)
    frames = moving_sequence(n_frames=3, size=64, noise_sigma=2.0)
    kernels = {
        "fig6_mul8x8_200k": lambda mode: _fig6_kernel(mode, a, b),
        "fig8_sad_surface": lambda mode: _fig8_kernel(mode, frames[1], frames[0]),
        "fig9_hevc_encode": lambda mode: _fig9_kernel(mode, frames),
    }
    rows = []
    for name, kernel in kernels.items():
        fast_result, fast_s = kernel("auto")
        loop_result, loop_s = kernel("loop")
        identical = bool(np.array_equal(fast_result, loop_result))
        rows.append(
            {
                "kernel": name,
                "loop_ms": round(loop_s * 1e3, 2),
                "fast_ms": round(fast_s * 1e3, 2),
                "speedup": round(loop_s / fast_s, 1),
                "bit_identical": identical,
            }
        )
    return rows


def test_fastpath_speedup(benchmark):
    rows = benchmark.pedantic(sweep_speedups, rounds=1, iterations=1)
    emit(
        "fastpath_speedup",
        format_records(
            rows,
            title="Fast path (segment/LUT) vs legacy bit-loop, Fig. 6/8/9 kernels",
        ),
        data={"rows": rows},
    )
    assert all(r["bit_identical"] for r in rows)
    # The LSB-segment LUT plus native MSB add must pay off decisively on
    # the SAD surface (the acceptance bar is 10x).
    fig8 = next(r for r in rows if r["kernel"] == "fig8_sad_surface")
    assert fig8["speedup"] >= 10.0, rows
    assert all(r["speedup"] > 1.0 for r in rows), rows
