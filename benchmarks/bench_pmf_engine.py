"""PMF-convolution engine vs enumeration: exact at simulation-free cost.

The analytic engine (:mod:`repro.errors.analytic`) derives the complete
error distribution of a block adder by a carry/run dynamic program --
polynomial in the operand width -- where exhaustive enumeration is
``4**N`` and Monte Carlo trades accuracy for samples.  This benchmark
pins both claims:

* **exactness** -- total variation 0 against enumeration at N=12, and
  agreement with the exact DP error rate at N=16 (where enumeration is
  intractable, Monte Carlo supplies a sanity reference);
* **cost** -- the N=12 speedup over enumeration is CI-gated at
  >= 100x (measured in the thousands; the gate is deliberately slack
  so shared CI runners never flake it).
"""

from __future__ import annotations

import time

from repro.adders.gear import GeArConfig
from repro.adders.gear_error import (
    exact_error_probability,
    monte_carlo_error_rate,
)
from repro.adders.hetero import HeteroGeArConfig
from repro.characterization.report import format_records
from repro.errors.analytic import (
    analytic_error_pmf,
    analytic_error_rate,
    exhaustive_error_pmf,
)

from _util import emit

#: Hard CI gate on the N=12 analytic-vs-exhaustive speedup.
MIN_SPEEDUP_N12 = 100.0

#: Monte Carlo samples for the N=16 reference row.
MC_SAMPLES = 300_000


def _timed(thunk):
    t0 = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - t0


def sweep_engines():
    rows = []
    for config in (
        GeArConfig(12, 4, 4),
        GeArConfig(12, 2, 2),
        HeteroGeArConfig(((6, 0), (3, 2), (3, 3))),
    ):
        pmf, t_analytic = _timed(lambda c=config: analytic_error_pmf(c))
        truth, t_truth = _timed(lambda c=config: exhaustive_error_pmf(c))
        rows.append(
            {
                "config": config.name,
                "reference": "exhaustive",
                "t_analytic_ms": round(t_analytic * 1e3, 3),
                "t_reference_ms": round(t_truth * 1e3, 1),
                "speedup": round(t_truth / t_analytic, 1),
                "gap": pmf.total_variation(truth),
            }
        )
    # N=16: enumeration is 4**16 operand pairs -- intractable, which is
    # the point.  The analytic rate still matches the exact DP, and a
    # large Monte Carlo run brackets it within sampling noise.
    config = GeArConfig(16, 4, 4)
    rate, t_analytic = _timed(lambda: analytic_error_rate(config))
    mc, t_mc = _timed(
        lambda: monte_carlo_error_rate(config, n_samples=MC_SAMPLES, seed=0)
    )
    rows.append(
        {
            "config": config.name,
            "reference": f"monte_carlo({MC_SAMPLES})",
            "t_analytic_ms": round(t_analytic * 1e3, 3),
            "t_reference_ms": round(t_mc * 1e3, 1),
            "speedup": round(t_mc / t_analytic, 1),
            "gap": abs(rate - exact_error_probability(config)),
        }
    )
    return rows


def test_pmf_engine(benchmark):
    rows = benchmark.pedantic(sweep_engines, rounds=1, iterations=1)
    emit(
        "pmf_engine",
        format_records(
            rows, title="analytic PMF engine vs enumeration / Monte Carlo"
        ),
        data={"rows": rows},
        config={"min_speedup_n12": MIN_SPEEDUP_N12, "mc_samples": MC_SAMPLES},
    )
    for row in rows:
        if row["reference"] == "exhaustive":
            # Exact agreement: all probabilities are dyadic rationals,
            # representable without rounding at these widths.
            assert row["gap"] == 0.0, row
            assert row["speedup"] >= MIN_SPEEDUP_N12, row
        else:
            assert row["gap"] <= 1e-9, row
            assert row["speedup"] > 1.0, row
