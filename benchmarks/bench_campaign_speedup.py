"""Campaign engine on the Table IV sweep: speedup, determinism, cache.

Runs the N=11 GeAr Monte-Carlo sweep (the paper's Table IV rows) through
the campaign engine three ways -- serial, 4 workers, and a warm-cache
rerun -- and records the wall-clocks under
``benchmarks/results/campaign_speedup.txt``.

The determinism and warm-cache guarantees are asserted unconditionally;
the >= 3x parallel-speedup bar only applies where the host actually has
four cores to offer (single-core CI containers cannot speed anything up
by forking, and the numbers are recorded either way).
"""

from __future__ import annotations

import os
import time

from repro.campaign import run_campaign
from repro.characterization.report import format_records
from repro.dse.explorer import gear_space_tasks

from _util import emit

N_SAMPLES = 1_000_000
N_WORKERS = 4


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def sweep_campaign(cache_dir: str):
    tasks = gear_space_tasks(11, model="monte_carlo", n_samples=N_SAMPLES,
                             seed=0)
    runs = {}
    rows = []

    def timed(label, **kwargs):
        start = time.perf_counter()
        runs[label] = run_campaign(tasks, **kwargs)
        wall = time.perf_counter() - start
        stats = runs[label].stats
        rows.append(
            {
                "run": label,
                "wall_s": round(wall, 2),
                "executed": stats.n_executed,
                "cache_hits": stats.n_cache_hits,
                "utilization%": round(100 * stats.worker_utilization),
            }
        )
        return wall

    serial_s = timed("serial")
    parallel_s = timed(f"{N_WORKERS}_workers", n_workers=N_WORKERS)
    timed("cold_cache", n_workers=N_WORKERS, cache_dir=cache_dir)
    timed("warm_cache", n_workers=N_WORKERS, cache_dir=cache_dir)
    rows.append(
        {
            "run": "speedup",
            "wall_s": round(serial_s / parallel_s, 2),
            "executed": "-",
            "cache_hits": "-",
            "utilization%": "-",
        }
    )
    return rows, runs, serial_s / parallel_s


def test_campaign_speedup(benchmark, tmp_path):
    rows, runs, speedup = benchmark.pedantic(
        sweep_campaign, args=(str(tmp_path / "cache"),), rounds=1,
        iterations=1,
    )
    emit(
        "campaign_speedup",
        format_records(
            rows,
            title=(
                f"Table IV Monte-Carlo sweep through the campaign engine "
                f"({N_SAMPLES} samples/row, host cores={_cores()})"
            ),
        ),
        data={"rows": rows, "parallel_speedup": speedup},
        config={
            "n_samples": N_SAMPLES,
            "n_workers": N_WORKERS,
            "host_cores": _cores(),
        },
    )
    # Bit-identical records no matter the worker count or cache state.
    reference = runs["serial"].results
    assert len(reference) == 17
    for label in (f"{N_WORKERS}_workers", "cold_cache", "warm_cache"):
        assert runs[label].results == reference, label
    # Warm rerun answers everything from the cache, computing nothing.
    assert runs["warm_cache"].stats.n_executed == 0
    assert runs["warm_cache"].stats.n_cache_hits == 17
    assert runs["cold_cache"].stats.n_executed == 17
    # The parallel bar needs real cores behind the workers.
    if _cores() >= N_WORKERS:
        assert speedup >= 3.0, rows
