"""Bit-parallel compiled engine vs scalar netlist walk, Table III kernels.

Times the exhaustive gate-level kernels behind the paper's Table III /
fault-resilience experiments under both evaluation engines
(``eval_mode="bitsim"`` vs ``"scalar"``), verifies the results are
bit-identical, and records the speedups under
``benchmarks/results/bitsim_speedup.txt`` plus the machine-readable
``BENCH_bitsim_speedup.json`` that CI's threshold check consumes.

The acceptance bar (ISSUE/PR 4) is 20x on the exhaustive
``count_error_cases`` and ``fault_error_rates`` sweeps of the 8-bit
Table III ripple netlists; CI's smoke job enforces a relaxed 5x floor
so shared runners do not flake the build.
"""

from __future__ import annotations

import time

from repro.adders.fulladder import FULL_ADDER_NAMES
from repro.adders.netlist_builder import build_ripple_adder_netlist
from repro.adders.ripple import ApproximateRippleAdder
from repro.characterization.report import format_records
from repro.logic import count_error_cases, toggle_counts
from repro.logic.bitsim import compile_netlist
from repro.logic.faults import fault_error_rates
from repro.logic.simulate import exhaustive_stimuli

from _util import emit

WIDTH = 8
APPROX_LSBS = 4


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _ripple_netlist(cell):
    adder = ApproximateRippleAdder(
        WIDTH, approx_fa=cell, num_approx_lsbs=APPROX_LSBS
    )
    return build_ripple_adder_netlist(adder)


def _row(kernel, scalar_s, bitsim_s, identical):
    return {
        "kernel": kernel,
        "scalar_ms": round(scalar_s * 1e3, 2),
        "bitsim_ms": round(bitsim_s * 1e3, 3),
        "speedup": round(scalar_s / bitsim_s, 1),
        "bit_identical": identical,
    }


def _count_error_cases_kernel():
    """Exhaustive 2**17 equivalence sweep: AccuFA ripple vs every
    approximate Table III variant (the Table III '#Error Cases' column,
    lifted to the 8-bit datapath)."""
    golden = _ripple_netlist("AccuFA")
    candidates = {
        cell: _ripple_netlist(cell)
        for cell in FULL_ADDER_NAMES
        if cell != "AccuFA"
    }
    compile_netlist(golden)  # warm-up: compile outside the timer
    for netlist in candidates.values():
        compile_netlist(netlist)
    bitsim, bitsim_s = _timed(lambda: {
        cell: count_error_cases(golden, netlist, eval_mode="bitsim")
        for cell, netlist in candidates.items()
    })
    scalar, scalar_s = _timed(lambda: {
        cell: count_error_cases(golden, netlist, eval_mode="scalar")
        for cell, netlist in candidates.items()
    })
    return _row(
        "count_error_cases_2^17_x5", scalar_s, bitsim_s, bitsim == scalar
    )


def _fault_rates_kernel():
    """Exhaustive single-stuck-at sweep of the ApxFA1 ripple netlist:
    every injectable net, both polarities, all 2**17 vectors per fault."""
    netlist = _ripple_netlist("ApxFA1")
    stimuli = exhaustive_stimuli(netlist.inputs)
    compile_netlist(netlist)
    bitsim, bitsim_s = _timed(lambda: fault_error_rates(
        netlist, stimuli=stimuli, eval_mode="bitsim"
    ))
    scalar, scalar_s = _timed(lambda: fault_error_rates(
        netlist, stimuli=stimuli, eval_mode="scalar"
    ))
    return _row("fault_error_rates_exhaustive", scalar_s, bitsim_s,
                bitsim == scalar)


def _toggle_counts_kernel():
    """Exhaustive switching-activity extraction (the power model's
    input) on the ApxFA3 ripple netlist."""
    netlist = _ripple_netlist("ApxFA3")
    stimuli = exhaustive_stimuli(netlist.inputs)
    compile_netlist(netlist)
    bitsim, bitsim_s = _timed(
        lambda: toggle_counts(netlist, stimuli, eval_mode="bitsim")
    )
    scalar, scalar_s = _timed(
        lambda: toggle_counts(netlist, stimuli, eval_mode="scalar")
    )
    return _row("toggle_counts_exhaustive", scalar_s, bitsim_s,
                bitsim == scalar)


def sweep_speedups():
    return [
        _count_error_cases_kernel(),
        _fault_rates_kernel(),
        _toggle_counts_kernel(),
    ]


def test_bitsim_speedup(benchmark):
    rows = benchmark.pedantic(sweep_speedups, rounds=1, iterations=1)
    emit(
        "bitsim_speedup",
        format_records(
            rows,
            title="Bit-parallel compiled engine vs scalar walk "
            f"({WIDTH}-bit Table III ripple netlists, exhaustive)",
        ),
        data={"rows": rows},
        config={"width": WIDTH, "approx_lsbs": APPROX_LSBS,
                "n_vectors": 2 ** (2 * WIDTH + 1)},
    )
    assert all(r["bit_identical"] for r in rows)
    # The acceptance kernels must pay off decisively (ISSUE bar: 20x).
    by_kernel = {r["kernel"]: r for r in rows}
    assert by_kernel["count_error_cases_2^17_x5"]["speedup"] >= 20.0, rows
    assert by_kernel["fault_error_rates_exhaustive"]["speedup"] >= 20.0, rows
    assert all(r["speedup"] > 1.0 for r in rows), rows
