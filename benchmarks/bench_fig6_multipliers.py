"""Reproduction of Fig. 6: multi-bit multiplier area/power/quality.

Characterizes accurate and approximate multipliers at 2x2, 4x4, 8x8 and
16x16 (the paper's widths) and prints the area/power/quality table.
"""

from __future__ import annotations

from repro.characterization.report import format_records
from repro.multipliers.characterize import fig6_multiplier_family

from _util import emit


def characterize_fig6():
    return fig6_multiplier_family(
        widths=(2, 4, 8, 16), n_samples=20_000
    )


def test_fig6(benchmark):
    records = benchmark.pedantic(characterize_fig6, rounds=1, iterations=1)
    rows = [r.as_row() for r in records]
    for row in rows:
        row["power_nw"] = round(row["power_nw"], 1)
    emit(
        "fig6_multipliers",
        format_records(
            rows,
            columns=["name", "width", "area_ge", "power_nw", "error_rate",
                     "normalized_med", "max_error_distance"],
            title="Fig. 6: accurate vs approximate multipliers (2x2..16x16)",
        ),
        data={"rows": rows},
    )
    # Shape: at every width the approximate variants dominate the
    # accurate one in area and power, and accurate ones never err.
    for width in (4, 8, 16):
        at_width = [r for r in records if r.width == width]
        acc = next(r for r in at_width if r.name.startswith("Acc"))
        assert acc.metrics.error_rate == 0.0
        for rec in at_width:
            if rec is acc:
                continue
            assert rec.area_ge < acc.area_ge
            assert rec.power_nw < acc.power_nw
            assert rec.metrics.error_rate > 0.0
    # Absolute error grows with width for the all-approximate variant.
    v1 = sorted((r for r in records if "V1" in r.name), key=lambda r: r.width)
    meds = [r.metrics.mean_error_distance for r in v1]
    assert meds == sorted(meds)
