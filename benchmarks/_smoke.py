"""Benchmark smoke check: fast path vs legacy loop on a Fig. 8 surface.

Runs a down-scaled version of the Fig. 8 SAD-surface experiment (16x16
frames, 4x4 blocks, search range 2) under BOTH evaluation engines for
every ApxSAD variant and fails on any result divergence.  Wall-clock
times for the two engines are reported alongside.

Usable two ways:

* standalone: ``PYTHONPATH=src python benchmarks/_smoke.py`` (exit code
  1 on divergence);
* from the tier-1 suite: ``tests/integration/test_benchmark_smoke.py``
  imports :func:`run_smoke` and asserts on its records.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow standalone execution from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SIZE = 16
BLOCK_SIZE = 4
SEARCH = 2
APPROX_LSBS = 4


def run_smoke() -> list:
    """Down-scaled Fig. 8 surfaces under both engines, per variant.

    Returns:
        List of dicts with ``variant``, ``diverged`` (bool),
        ``max_abs_diff``, ``loop_s`` and ``fast_s``.
    """
    from repro.accelerators.sad import make_sad_variants
    from repro.media.synthetic import moving_sequence
    from repro.video.motion import sad_surface

    frames = moving_sequence(n_frames=2, size=SIZE, noise_sigma=2.0)
    cur, ref = frames[1], frames[0]
    block_xy = (SIZE // 2, SIZE // 2)
    n_pixels = BLOCK_SIZE * BLOCK_SIZE
    fast_variants = make_sad_variants(
        n_pixels=n_pixels, approx_lsbs=APPROX_LSBS, eval_mode="auto"
    )
    loop_variants = make_sad_variants(
        n_pixels=n_pixels, approx_lsbs=APPROX_LSBS, eval_mode="loop"
    )
    records = []
    for name in fast_variants:
        t0 = time.perf_counter()
        surface_fast = sad_surface(
            cur, ref, block_xy, BLOCK_SIZE, SEARCH, fast_variants[name]
        )
        t1 = time.perf_counter()
        surface_loop = sad_surface(
            cur, ref, block_xy, BLOCK_SIZE, SEARCH, loop_variants[name]
        )
        t2 = time.perf_counter()
        diff = np.abs(surface_fast - surface_loop)
        records.append(
            {
                "variant": name,
                "diverged": bool(diff.max() > 0),
                "max_abs_diff": int(diff.max()),
                "fast_s": t1 - t0,
                "loop_s": t2 - t1,
            }
        )
    return records


def main() -> int:
    records = run_smoke()
    width = max(len(r["variant"]) for r in records)
    for r in records:
        status = "DIVERGED" if r["diverged"] else "ok"
        print(
            f"{r['variant']:<{width}}  {status:<8}  "
            f"fast {r['fast_s'] * 1e3:7.2f} ms  loop {r['loop_s'] * 1e3:7.2f} ms"
        )
    if any(r["diverged"] for r in records):
        print("FAIL: fast path diverged from the legacy loop", file=sys.stderr)
        return 1
    print("smoke ok: fast path bit-identical to legacy loop")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
