"""Reproduction of Fig. 5: 2x2 accurate vs approximate multipliers.

Prints both truth tables, and the characterization table (area, power,
error cases, max error) from our substrate next to the paper's ASIC
numbers.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.paperdata import FIG5_AREA_GE, FIG5_POWER_NW
from repro.characterization.report import format_records, format_table
from repro.multipliers.characterize import characterize_mul2x2_family
from repro.multipliers.mul2x2 import multiplier_2x2

from _util import emit


def characterize_fig5():
    rows = characterize_mul2x2_family()
    for row in rows:
        row["area_GE(paper)"] = FIG5_AREA_GE[row["name"]]
        row["power_nW(paper)"] = FIG5_POWER_NW[row["name"]]
    truth_tables = {}
    a = np.repeat(np.arange(4), 4)
    b = np.tile(np.arange(4), 4)
    for name in ("ApxMulSoA", "ApxMulOur"):
        products = multiplier_2x2(name).multiply(a, b)
        truth_tables[name] = [
            [f"{av}x{bv}" if False else f"{av:02b}x{bv:02b}",
             f"{int(p):04b}", int(p), av * bv]
            for av, bv, p in zip(a, b, products)
        ]
    return rows, truth_tables


def test_fig5(benchmark):
    rows, truth_tables = benchmark(characterize_fig5)
    parts = [
        format_records(rows, title="Fig. 5 characterization (ours vs paper)")
    ]
    for name, table in truth_tables.items():
        parts.append(
            format_table(
                ["a x b", "output", "value", "exact"],
                table,
                title=f"{name} truth table",
            )
        )
    emit(
        "fig5_mul2x2",
        "\n\n".join(parts),
        data={"rows": rows, "truth_tables": truth_tables},
    )

    by_name = {r["name"]: r for r in rows}
    assert by_name["ApxMulSoA"]["n_error_cases"] == 1
    assert by_name["ApxMulSoA"]["max_error_value"] == 2
    assert by_name["ApxMulOur"]["n_error_cases"] == 3
    assert by_name["ApxMulOur"]["max_error_value"] == 1
    # Configurable-correction asymmetry (the paper's headline for Fig 5).
    assert by_name["CfgMulOur"]["area_ge"] < by_name["CfgMulSoA"]["area_ge"]
    # Our area ordering matches the paper's for the three raw designs.
    ours = [by_name[n]["area_ge"] for n in ("ApxMulSoA", "ApxMulOur", "AccMul")]
    paper = [FIG5_AREA_GE[n] for n in ("ApxMulSoA", "ApxMulOur", "AccMul")]
    assert ours == sorted(ours) and paper == sorted(paper)
