"""Reproduction of Fig. 4: the N=11 GeAr accuracy/area design space.

Prints the full scatter grouped by R (the figure's symbol classes), the
Pareto front, and the two constraint-driven selections the paper walks
through (max accuracy; >= 90% accuracy at minimum area).
"""

from __future__ import annotations

from repro.characterization.report import format_records
from repro.dse.explorer import explore_gear_space
from repro.dse.pareto import pareto_front
from repro.dse.selection import select_max_accuracy, select_min_area

from _util import emit


def explore_fig4():
    records = explore_gear_space(11)
    front = pareto_front(
        records, [("lut_count", True), ("accuracy_percent", False)]
    )
    max_acc = select_max_accuracy(records)
    constrained = select_min_area(records, 90.0)
    r3_constrained = select_min_area(
        [r for r in records if r["r"] == 3], 90.0
    )
    return records, front, max_acc, constrained, r3_constrained


def test_fig4(benchmark):
    records, front, max_acc, constrained, r3 = benchmark(explore_fig4)
    for rec in records:
        rec["accuracy_percent"] = round(rec["accuracy_percent"], 2)
    lines = [
        format_records(
            sorted(records, key=lambda r: r["lut_count"]),
            columns=["r", "p", "accuracy_percent", "lut_count"],
            title="Fig. 4 scatter: accuracy vs area (all N=11 configs)",
        ),
        "",
        "Pareto front (area up, accuracy up): "
        + ", ".join(f"R={r['r']},P={r['p']}" for r in
                     sorted(front, key=lambda r: r["lut_count"])),
        f"Max-accuracy selection: {max_acc['name']} "
        f"({max_acc['accuracy_percent']:.2f}%)",
        f"Min-area with >=90% accuracy (global): {constrained['name']} "
        f"({constrained['lut_count']} LUTs)",
        f"Min-area with >=90% accuracy within R=3 (paper's walk): "
        f"{r3['name']} ({r3['lut_count']} LUTs)",
    ]
    emit(
        "fig4_gear_pareto",
        "\n".join(lines),
        data={
            "records": records,
            "front": front,
            "max_accuracy": max_acc["name"],
            "min_area_90": constrained["name"],
            "min_area_90_r3": r3["name"],
        },
    )
    assert (max_acc["r"], max_acc["p"]) == (1, 9)
    assert (r3["r"], r3["p"]) == (3, 5)
    assert constrained["accuracy_percent"] >= 90.0
    # The front is a genuine trade-off curve.
    ordered = sorted(front, key=lambda r: r["lut_count"])
    accs = [r["accuracy_percent"] for r in ordered]
    assert accs == sorted(accs)
