"""Ablation: inherent resilience of ML inference (paper Sec. 1 claim).

"There is a large body of resource-hungry applications that can tolerate
approximation errors" -- with "deep learning networks ... recognition
and machine learning" first on the list.  This bench quantifies that on
the library's own substrate: a quantized MLP classifier whose MACs run
through increasingly approximate multipliers/accumulators, reporting
classification accuracy against an arithmetic-cost proxy.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.neural import MLPClassifier, make_classification_data
from repro.adders.ripple import ApproximateRippleAdder
from repro.characterization.report import format_records
from repro.multipliers.booth import BoothMultiplier

from _util import emit


def sweep_resilience():
    X, y = make_classification_data(n_samples=450, n_classes=3, seed=2)
    mlp = MLPClassifier.train(X, y, hidden=8, epochs=300, seed=2)
    quantized = mlp.quantize(X)
    rows = [
        {
            "datapath": "float",
            "accuracy": round(mlp.accuracy(X, y), 4),
            "relative_cost": 1.00,
        },
        {
            "datapath": "int8 exact",
            "accuracy": round(quantized.accuracy(X, y), 4),
            "relative_cost": 1.00,
        },
    ]
    # Booth-digit truncation sweep: dropped digits remove partial-product
    # rows, a direct MAC-energy proxy.
    n_digits = 8  # 16-bit Booth
    for trunc in (1, 2, 3, 4):
        multiplier = BoothMultiplier(16, truncate_digits=trunc)
        accuracy = quantized.accuracy(X, y, multiplier=multiplier)
        rows.append(
            {
                "datapath": f"Booth trunc={trunc}",
                "accuracy": round(accuracy, 4),
                "relative_cost": round(1 - trunc / n_digits, 3),
            }
        )
    # Approximate accumulator on top of exact multiplies.
    accumulator = ApproximateRippleAdder(24, approx_fa="ApxFA1",
                                         num_approx_lsbs=6)
    rows.append(
        {
            "datapath": "exact mul + ApxFA1x6 accumulator",
            "accuracy": round(
                quantized.accuracy(
                    X, y, multiplier=BoothMultiplier(16),
                    accumulator=accumulator,
                ),
                4,
            ),
            "relative_cost": round(accumulator.area_ge
                                   / ApproximateRippleAdder(24).area_ge, 3),
        }
    )
    return rows


def test_neural_resilience(benchmark):
    rows = benchmark.pedantic(sweep_resilience, rounds=1, iterations=1)
    emit(
        "neural_resilience",
        format_records(
            rows,
            title="MLP classification accuracy under approximate MACs",
        ),
        data={"rows": rows},
    )
    by_name = {r["datapath"]: r for r in rows}
    exact = by_name["int8 exact"]["accuracy"]
    # Mild approximation: negligible accuracy loss (the resilience claim).
    assert by_name["Booth trunc=1"]["accuracy"] >= exact - 0.03
    assert by_name["Booth trunc=2"]["accuracy"] >= exact - 0.05
    # Aggressive approximation eventually degrades: the trade-off is real.
    assert by_name["Booth trunc=4"]["accuracy"] <= exact
    # Quantization itself costs little vs float.
    assert exact >= by_name["float"]["accuracy"] - 0.05
