"""Ablation: multiplier architectures at equal width (beyond Fig. 6).

Fig. 6 sweeps the recursive 2x2-composition family.  The library also
provides Wallace-tree and signed Booth multipliers; this bench compares
all three architectures at 8x8 under comparable approximation pressure
(area vs quality), and the truncated variants against their analytic
worst-case bounds.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.report import format_records
from repro.errors.metrics import compute_error_metrics
from repro.multipliers.booth import BoothMultiplier
from repro.multipliers.recursive import RecursiveMultiplier
from repro.multipliers.wallace import WallaceMultiplier

from _util import emit


def sweep_architectures():
    rng = np.random.default_rng(9)
    a = rng.integers(0, 256, 30_000)
    b = rng.integers(0, 256, 30_000)
    sa = rng.integers(-128, 128, 30_000)
    sb = rng.integers(-128, 128, 30_000)
    rows = []

    def record(name, area, approx, exact):
        metrics = compute_error_metrics(approx, exact)
        rows.append(
            {
                "multiplier": name,
                "area_ge": round(area, 0),
                "error_rate": round(metrics.error_rate, 4),
                "MED": round(metrics.mean_error_distance, 2),
                "max_ED": int(metrics.max_error_distance),
            }
        )

    configs = [
        ("Recursive(exact)", RecursiveMultiplier(8, leaf_policy="none")),
        ("Recursive(ApxMulOur,all)",
         RecursiveMultiplier(8, leaf_mul="ApxMulOur", leaf_policy="all")),
        ("Recursive(low_half)",
         RecursiveMultiplier(8, leaf_mul="ApxMulOur", leaf_policy="low_half")),
        ("Wallace(exact)", WallaceMultiplier(8)),
        ("Wallace(ApxFA1,cols<6)",
         WallaceMultiplier(8, compress_fa="ApxFA1", approx_columns=6)),
        ("Wallace(trunc<4)", WallaceMultiplier(8, truncate_columns=4)),
    ]
    for name, mul in configs:
        record(name, mul.area_ge, mul.multiply(a, b), a * b)

    booth_exact = BoothMultiplier(8)
    record("Booth(exact,signed)", 0.0,
           booth_exact.multiply(sa, sb), sa * sb)
    booth_trunc = BoothMultiplier(8, truncate_digits=1)
    record("Booth(trunc=1,signed)", 0.0,
           booth_trunc.multiply(sa, sb), sa * sb)
    return rows, booth_trunc


def test_multiplier_archs(benchmark):
    rows, booth_trunc = benchmark.pedantic(
        sweep_architectures, rounds=1, iterations=1
    )
    emit(
        "multiplier_archs",
        format_records(
            rows, title="Multiplier architectures at 8x8 (beyond Fig. 6)"
        ),
        data={"rows": rows},
    )
    by_name = {r["multiplier"]: r for r in rows}
    # Exact variants never err.
    for name in ("Recursive(exact)", "Wallace(exact)", "Booth(exact,signed)"):
        assert by_name[name]["error_rate"] == 0.0, name
    # Approximation reduces area within each architecture family.
    assert (by_name["Wallace(trunc<4)"]["area_ge"]
            < by_name["Wallace(exact)"]["area_ge"])
    assert (by_name["Recursive(ApxMulOur,all)"]["area_ge"]
            < by_name["Recursive(exact)"]["area_ge"])
    # Low-half protection beats all-approximate on quality.
    assert (by_name["Recursive(low_half)"]["MED"]
            < by_name["Recursive(ApxMulOur,all)"]["MED"])
    # Booth truncation honours its analytic bound.
    assert (by_name["Booth(trunc=1,signed)"]["max_ED"]
            <= booth_trunc.truncation_error_bound())
