"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The
rendered data is printed to stdout *and* written under
``benchmarks/results/`` so the artifacts survive pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print(f"\n=== {name} ===\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
