"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The
rendered data is printed to stdout *and* written under
``benchmarks/results/`` so the artifacts survive pytest's capture:

* ``results/<name>.txt`` -- the human-readable table (:func:`emit`);
* ``results/BENCH_<name>.json`` -- a machine-readable record of the
  same run (:func:`emit_json`), seeding the repo's perf trajectory:
  CI uploads these artifacts, and threshold checks / trend tooling
  consume them without re-parsing text tables.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Bump when the JSON artifact layout changes shape.
BENCH_SCHEMA_VERSION = 1


def _jsonable(value):
    """Best-effort conversion of numpy scalars/arrays for json.dump."""
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def emit(name: str, text: str, data=None, config=None) -> None:
    """Print a reproduction table and persist it to results/<name>.txt.

    When ``data`` is given, a machine-readable ``BENCH_<name>.json``
    artifact is written alongside via :func:`emit_json`.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    print(f"\n=== {name} ===\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        emit_json(name, data, config)


def emit_json(name: str, data, config=None) -> Path:
    """Write the machine-readable ``BENCH_<name>.json`` artifact.

    Args:
        name: Benchmark name (matches the ``emit`` text artifact).
        data: JSON-serializable payload -- typically the benchmark's
            row records, including any timings and speedup ratios.
        config: Optional mapping of the run's configuration knobs
            (sizes, seeds, modes) so artifacts are self-describing.

    Returns:
        The path of the written artifact.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "config": dict(config or {}),
        "data": data,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False, default=_jsonable)
        + "\n"
    )
    return path


def load_bench_json(name: str) -> dict:
    """Read back a ``BENCH_<name>.json`` artifact (for threshold checks)."""
    return json.loads((RESULTS_DIR / f"BENCH_{name}.json").read_text())
