"""Reproduction of Table III: 1-bit full-adder characterization.

Prints, for every adder of Table III, the truth-table-derived error
count and the area/power/delay from our gate-level substrate next to
the paper's published ASIC numbers.
"""

from __future__ import annotations

from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.characterization.paperdata import (
    TABLE_III_AREA_GE,
    TABLE_III_ERROR_CASES,
    TABLE_III_POWER_NW,
)
from repro.characterization.report import format_records
from repro.logic.simulate import estimate_power

from _util import emit


def characterize_table3():
    rows = []
    for name in FULL_ADDER_NAMES:
        fa = FULL_ADDERS[name]
        netlist = fa.netlist()
        power = estimate_power(netlist)
        rows.append(
            {
                "adder": name,
                "errors(ours)": fa.n_error_cases,
                "errors(paper)": TABLE_III_ERROR_CASES[name],
                "area_GE(ours)": round(netlist.area_ge, 2),
                "area_GE(paper)": TABLE_III_AREA_GE[name],
                "power_nW(ours)": round(power.total_nw, 1),
                "power_nW(paper)": TABLE_III_POWER_NW[name],
                "delay_ps(ours)": round(netlist.delay_ps(), 1),
            }
        )
    return rows


def test_table3(benchmark):
    rows = benchmark(characterize_table3)
    emit(
        "table3_fulladders",
        format_records(rows, title="Table III: 1-bit full adders (ours vs paper)"),
        data={"rows": rows},
    )
    # Shape assertions: error counts exact, orderings preserved.
    assert [r["errors(ours)"] for r in rows] == [0, 2, 2, 3, 3, 4]
    ours = {r["adder"]: r["area_GE(ours)"] for r in rows}
    paper = {r["adder"]: r["area_GE(paper)"] for r in rows}
    order_ours = sorted(ours, key=ours.get)
    order_paper = sorted(paper, key=paper.get)
    assert order_ours == order_paper
