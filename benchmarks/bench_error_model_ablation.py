"""Ablation: GeAr error-probability models vs ground truth.

Compares, over every valid N=11 configuration plus selected wider ones:

* the paper's inclusion-exclusion model (Sec. 4.2),
* the exact dynamic program,
* exhaustive enumeration (N <= 11) or Monte-Carlo (wider),

The headline finding: the paper's event family is complete, so its
inclusion-exclusion model is *exact* (gap 0 against both the DP and
enumeration) -- the models differ only in cost, where the DP is
polynomial and the expansion is exponential in the event count.
"""

from __future__ import annotations

from repro.adders.gear import GeArConfig
from repro.adders.gear_error import (
    exact_error_probability,
    exhaustive_error_rate,
    monte_carlo_error_rate,
    paper_error_probability,
)
from repro.characterization.report import format_records

from _util import emit


def sweep_models():
    rows = []
    for config in GeArConfig.all_valid(11):
        n_events = config.r * (config.k - 1)
        paper = (
            paper_error_probability(config) if n_events <= 18 else None
        )
        exact = exact_error_probability(config)
        truth = exhaustive_error_rate(config)
        rows.append(
            {
                "config": config.name,
                "paper_IE": round(paper, 6) if paper is not None else "n/a",
                "exact_DP": round(exact, 6),
                "ground_truth": round(truth, 6),
                "IE_gap": round(exact - paper, 6) if paper is not None else "n/a",
            }
        )
    for n, r, p in ((16, 4, 4), (16, 2, 2), (32, 4, 4)):
        config = GeArConfig(n, r, p)
        n_events = config.r * (config.k - 1)
        # For wide configs, truncate the inclusion-exclusion at an even
        # order (Bonferroni lower bound) to keep it tractable.
        order = None if n_events <= 18 else 4
        paper = paper_error_probability(config, max_order=order)
        exact = exact_error_probability(config)
        rows.append(
            {
                "config": config.name,
                "paper_IE": round(paper, 6),
                "exact_DP": round(exact, 6),
                "ground_truth": round(
                    monte_carlo_error_rate(config, n_samples=300_000), 6
                ),
                "IE_gap": round(exact - paper, 6),
            }
        )
    return rows


def test_error_model_ablation(benchmark):
    rows = benchmark.pedantic(sweep_models, rounds=1, iterations=1)
    emit(
        "error_model_ablation",
        format_records(
            rows, title="GeAr error models: paper IE vs exact DP vs truth"
        ),
        data={"rows": rows},
    )
    for row in rows:
        # The DP is exact: it matches enumeration to double precision
        # (and Monte Carlo to sampling noise).
        if "N=11" in row["config"]:
            assert abs(row["exact_DP"] - row["ground_truth"]) < 1e-9, row
        else:
            assert abs(row["exact_DP"] - row["ground_truth"]) < 0.01, row
        # The paper's model never overestimates and stays close.
        if row["paper_IE"] != "n/a":
            assert row["IE_gap"] >= -1e-9, row
            assert row["IE_gap"] < 0.02, row
