"""Campaign dispatch overhead: warm persistent pool vs process-per-attempt.

The hardened runner's process-per-attempt executor pays a fresh
``multiprocessing.Process`` spawn for every task attempt.  For the
small tasks that dominate service traffic and fine-grained sweeps
(single-config analytic characterizations, ~0.2 ms of real work), the
spawn is the bottleneck: interpreter setup + imports + pipe plumbing
cost an order of magnitude more than the task.

This benchmark runs the **same sweep** (small unique analytic tasks,
hardened with a per-task ``timeout_s``) through both engines of
:func:`repro.campaign.run_campaign`:

* ``isolation="process"`` -- one spawned worker per attempt (baseline);
* ``isolation="warm"``    -- the persistent pre-forked
  :class:`~repro.campaign.warmpool.WarmPool` with micro-batched
  dispatch.

and cross-checks the two result lists for **bit-identity** before
reporting the speedup.  Gate: the warm engine must be >= 5x faster on
the small-task sweep (typical observed: 8-15x on one core; the gap
widens with task count since warm amortizes its fixed fork cost).

Emits ``results/BENCH_runner_overhead.json`` for the CI artifact and
threshold re-check.
"""

from __future__ import annotations

import time

from repro.campaign import CampaignTask, run_campaign

from _util import emit

N_TASKS = 64
N_WORKERS = 2
TIMEOUT_S = 30.0

GATE_MIN_SPEEDUP = 5.0


def _tasks():
    """Small unique hardened tasks: seeds differ so nothing dedupes."""
    return [
        CampaignTask("analytic", {"n": 8, "r": 2, "p": 2}, seed=41_000 + i)
        for i in range(N_TASKS)
    ]


def _run(isolation: str):
    start = time.perf_counter()
    result = run_campaign(
        _tasks(),
        n_workers=N_WORKERS,
        timeout_s=TIMEOUT_S,
        isolation=isolation,
    )
    wall_s = time.perf_counter() - start
    assert result.ok, f"{isolation} sweep quarantined: {result.failures}"
    return result, wall_s


def bench():
    # Warm-up both engines once so neither pays one-off import costs
    # inside the measured window.
    run_campaign(
        [CampaignTask("analytic", {"n": 8, "r": 2, "p": 2}, seed=1)],
        n_workers=1, timeout_s=TIMEOUT_S, isolation="process",
    )
    run_campaign(
        [CampaignTask("analytic", {"n": 8, "r": 2, "p": 2}, seed=1)],
        n_workers=1, timeout_s=TIMEOUT_S, isolation="warm",
    )

    process_result, process_s = _run("process")
    warm_result, warm_s = _run("warm")

    bit_identical = process_result.results == warm_result.results
    speedup = process_s / warm_s if warm_s > 0 else float("inf")
    rows = [
        {
            "engine": "process",
            "tasks": N_TASKS,
            "wall_s": round(process_s, 4),
            "ms_per_task": round(1e3 * process_s / N_TASKS, 3),
            "jobs_per_s": round(N_TASKS / process_s, 1),
        },
        {
            "engine": "warm",
            "tasks": N_TASKS,
            "wall_s": round(warm_s, 4),
            "ms_per_task": round(1e3 * warm_s / N_TASKS, 3),
            "jobs_per_s": round(N_TASKS / warm_s, 1),
            "speedup": round(speedup, 2),
            "bit_identical": bit_identical,
        },
    ]

    assert bit_identical, (
        "warm-pool results diverge from process-per-attempt"
    )
    assert speedup >= GATE_MIN_SPEEDUP, (
        f"warm-pool speedup {speedup:.2f}x < gate {GATE_MIN_SPEEDUP}x "
        f"(process {process_s:.3f}s vs warm {warm_s:.3f}s)"
    )
    return rows


def main() -> None:
    rows = bench()
    lines = [
        f"{row['engine']:<8}  "
        + "  ".join(f"{k}={v}" for k, v in row.items() if k != "engine")
        for row in rows
    ]
    emit(
        "runner_overhead",
        "\n".join(lines),
        data={"rows": rows},
        config={
            "n_tasks": N_TASKS,
            "n_workers": N_WORKERS,
            "timeout_s": TIMEOUT_S,
            "gate_min_speedup": GATE_MIN_SPEEDUP,
        },
    )


if __name__ == "__main__":
    main()
