"""Ablation: stuck-at fault exposure of exact vs approximate adders.

The paper's introduction motivates approximation partly via technology
reliability ("each new technology node faces serious reliability
threats ... hardware-level faults").  This bench quantifies one
interaction: approximate components contain fewer fault sites (less
logic) and their per-fault output perturbation is smaller in expectation
-- a defect in an already-truncated LSB costs little.
"""

from __future__ import annotations

import numpy as np

from repro.adders.netlist_builder import build_ripple_adder_netlist
from repro.adders.ripple import ApproximateRippleAdder
from repro.characterization.report import format_records
from repro.logic.faults import fault_error_rates, fault_sites

from _util import emit


def sweep_faults():
    rows = []
    rng = np.random.default_rng(0)
    configs = [
        ("exact", ApproximateRippleAdder(8)),
        ("ApxFA1x4", ApproximateRippleAdder(8, approx_fa="ApxFA1",
                                            num_approx_lsbs=4)),
        ("ApxFA3x4", ApproximateRippleAdder(8, approx_fa="ApxFA3",
                                            num_approx_lsbs=4)),
        ("ApxFA5x4", ApproximateRippleAdder(8, approx_fa="ApxFA5",
                                            num_approx_lsbs=4)),
    ]
    for label, adder in configs:
        netlist = build_ripple_adder_netlist(adder)
        rates = fault_error_rates(netlist, n_random_vectors=1024, seed=3)
        values = np.array(list(rates.values()))
        rows.append(
            {
                "adder": label,
                "fault_sites": len(fault_sites(netlist)),
                "mean_fault_ER": round(float(values.mean()), 4),
                "max_fault_ER": round(float(values.max()), 4),
                "undetectable_%": round(
                    100 * float(np.mean(values == 0.0)), 1
                ),
                "area_ge": round(netlist.area_ge, 1),
            }
        )
    return rows


def test_fault_resilience(benchmark):
    rows = benchmark.pedantic(sweep_faults, rounds=1, iterations=1)
    emit(
        "fault_resilience",
        format_records(
            rows,
            title="Single stuck-at fault exposure: exact vs approximate "
            "8-bit adders",
        ),
        data={"rows": rows},
    )
    by_label = {r["adder"]: r for r in rows}
    exact = by_label["exact"]
    for label in ("ApxFA1x4", "ApxFA3x4", "ApxFA5x4"):
        # A defect hits an approximate adder's output less often on
        # average (part of the fault mass lands in already-inexact LSBs).
        assert by_label[label]["mean_fault_ER"] < exact["mean_fault_ER"]
        assert by_label[label]["area_ge"] < exact["area_ge"]
    # The wire-only cells even make some stuck-at faults undetectable.
    assert by_label["ApxFA5x4"]["undetectable_%"] > 0
    assert all(r["mean_fault_ER"] > 0 for r in rows)
