"""Crash-recovery cost: journal replay throughput and availability.

The durability layer is only worth its fsyncs if recovery is fast and
complete.  Two measurements, both on the real ``JobJournal`` and the
real ``ServiceApp`` (in-process, same transport-stub path as
``tests/service``):

* **replay throughput** -- a journal of ~10k records (2,000 jobs x
  one admission + four lifecycle events, segmented as production
  writes them) is replayed cold; reported as wall seconds and
  records/s.  This bounds the restart blackout: ``/readyz`` stays 503
  for exactly this long.
* **post-crash availability** -- a service accepts a burst of jobs,
  is abandoned mid-queue (the in-process stand-in for ``kill -9``:
  workers cancelled, journal dropped with no graceful bookkeeping),
  then a second app on the same state directory replays, re-admits,
  and drains.  Availability is completed-after-restart / accepted, and
  the exactly-once invariant is checked via the pool's execution
  counter.

Smoke gates (loose for CI containers): replay sustains >= 5,000
records/s and finishes 10k records in under 10 s; availability after
the crash is exactly 1.0 with zero duplicate executions.
"""

from __future__ import annotations

import asyncio
import time

import json

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.http import handle_connection
from repro.service.journal import JobJournal

from _util import emit

N_JOBS_REPLAY = 2_000
EVENTS_PER_JOB = 4  # + 1 admission record each -> 10k records total
N_JOBS_AVAILABILITY = 24

GATE_REPLAY_RECORDS_PER_S = 5_000.0
GATE_REPLAY_SECONDS = 10.0
GATE_AVAILABILITY = 1.0


def _spec(job: int) -> dict:
    return {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
            "seed": job}


def bench_replay(tmp: str) -> dict:
    journal = JobJournal(tmp, segment_bytes=1 << 20, fsync=False)
    for job in range(N_JOBS_REPLAY):
        job_id = f"j{job:08d}"
        journal.log_admit(job_id, f"tenant-{job % 4}", _spec(job),
                          key=f"key-{job}",
                          decision={"mode": "as_declared"},
                          deadline_at=None)
        for seq, name in enumerate(
            ("accepted", "queued", "running", "completed")
        ):
            journal.log_event(job_id, seq, name, {"seq": seq})
    journal.close()
    n_records = N_JOBS_REPLAY * (1 + EVENTS_PER_JOB)

    t0 = time.perf_counter()
    report = JobJournal(tmp, fsync=False).replay()
    elapsed = time.perf_counter() - t0

    assert len(report.jobs) == N_JOBS_REPLAY
    assert report.n_records == n_records
    return {
        "n_jobs": N_JOBS_REPLAY,
        "n_records": n_records,
        "n_segments": len(journal.segments()),
        "replay_s": elapsed,
        "records_per_s": n_records / elapsed,
    }


class _SinkWriter:
    def __init__(self) -> None:
        self.buffer = bytearray()
        self.closed = False

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        return None


async def _post_job(app: ServiceApp, payload: dict) -> dict:
    body = json.dumps(payload).encode()
    raw = (
        f"POST /v1/jobs HTTP/1.1\r\nHost: bench\r\nX-Tenant: public\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body
    reader = asyncio.StreamReader()
    reader.feed_data(raw)
    reader.feed_eof()
    writer = _SinkWriter()
    await handle_connection(app, reader, writer)
    head, _, rest = bytes(writer.buffer).partition(b"\r\n\r\n")
    status = int(head.split(b" ")[1])
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    return status, json.loads(rest[:length])


async def _bench_availability(state: str) -> dict:
    app = ServiceApp(ServiceConfig(state_dir=state, n_workers=4))
    await app.start(paused=True)  # accepted, journaled, never dispatched
    accepted = []
    for job in range(N_JOBS_AVAILABILITY):
        status, body = await _post_job(app, _spec(job))
        assert status == 202, body
        accepted.append(body["job_id"])
    await app.abandon()  # the crash

    app2 = ServiceApp(ServiceConfig(state_dir=state, n_workers=4))
    t0 = time.perf_counter()
    await app2.start()
    ready_after_s = time.perf_counter() - t0
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            states = {jid: app2.jobs[jid].state for jid in accepted}
            if all(s in ("done", "failed") for s in states.values()):
                break
            await asyncio.sleep(0.05)
        completed = sum(
            1 for jid in accepted if app2.jobs[jid].state == "done"
        )
        return {
            "n_accepted": len(accepted),
            "n_completed_after_restart": completed,
            "availability": completed / len(accepted),
            "n_executions": app2.pool.n_campaign_executions,
            "ready_after_s": ready_after_s,
        }
    finally:
        await app2.stop()


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        replay = bench_replay(tmp)
    with tempfile.TemporaryDirectory() as tmp:
        avail = asyncio.run(_bench_availability(tmp))

    rows = [
        ("journal replay", f"{replay['n_records']:,} records"
         f" ({replay['n_segments']} segments)",
         f"{replay['replay_s'] * 1e3:8.1f} ms",
         f"{replay['records_per_s']:>12,.0f} rec/s"),
        ("crash recovery", f"{avail['n_accepted']} jobs accepted",
         f"{avail['ready_after_s'] * 1e3:8.1f} ms to ready",
         f"availability {avail['availability']:.3f}"),
    ]
    text = "\n".join(
        f"{name:<16} {detail:<28} {timing:<22} {rate}"
        for name, detail, timing, rate in rows
    )
    emit("recovery", text,
         data={"replay": replay, "availability": avail},
         config={
             "n_jobs_replay": N_JOBS_REPLAY,
             "events_per_job": EVENTS_PER_JOB,
             "n_jobs_availability": N_JOBS_AVAILABILITY,
             "gates": {
                 "replay_records_per_s": GATE_REPLAY_RECORDS_PER_S,
                 "replay_seconds": GATE_REPLAY_SECONDS,
                 "availability": GATE_AVAILABILITY,
             },
         })

    assert replay["records_per_s"] >= GATE_REPLAY_RECORDS_PER_S, (
        f"replay too slow: {replay['records_per_s']:.0f} rec/s"
    )
    assert replay["replay_s"] <= GATE_REPLAY_SECONDS, (
        f"replay blackout too long: {replay['replay_s']:.2f}s"
    )
    assert avail["availability"] >= GATE_AVAILABILITY, (
        f"jobs lost across the crash: {avail}"
    )
    assert avail["n_executions"] == avail["n_accepted"], (
        f"not exactly-once: {avail['n_executions']} executions for "
        f"{avail['n_accepted']} accepted jobs"
    )
    print("bench_recovery: all gates passed")


if __name__ == "__main__":
    main()
