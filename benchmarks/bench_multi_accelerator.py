"""Ablation: the managed multi-accelerator architecture (paper Sec. 6).

Builds accelerator profiles from *real* characterization (SAD modes:
energy from the cell-level model, quality from HEVC-lite encodes;
low-pass filter modes: SSIM on image content), runs concurrent
applications with run-time quality feedback, and compares total energy
against the always-exact baseline -- the paper's claim that a managed
sea of approximate accelerators meets quality constraints at lower
power.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.bank import (
    MultiAcceleratorArchitecture,
    RunningApplication,
)
from repro.accelerators.filters import LowPassFilterAccelerator
from repro.accelerators.manager import AcceleratorMode, AcceleratorProfile
from repro.accelerators.sad import SADAccelerator
from repro.characterization.report import format_records
from repro.media.ssim import ssim
from repro.media.synthetic import moving_sequence, standard_images
from repro.video.codec import HevcLiteEncoder

from _util import emit


def _sad_profile() -> AcceleratorProfile:
    """SAD modes: quality = bit-rate ratio vs exact; power = energy model."""
    frames = moving_sequence(n_frames=2, size=32, noise_sigma=2.0)
    encoder = HevcLiteEncoder(search_range=2, qp=4)
    baseline = encoder.encode(frames, SADAccelerator(n_pixels=64))
    modes = []
    for label, lsbs in (("exact", 0), ("apx2", 2), ("apx4", 4), ("apx6", 6)):
        accelerator = SADAccelerator(
            n_pixels=64, fa="ApxFA2", approx_lsbs=lsbs
        )
        result = encoder.encode(frames, accelerator)
        quality = min(1.0, baseline.total_bits / max(result.total_bits, 1))
        modes.append(
            AcceleratorMode(label, quality, accelerator.energy_per_op_fj)
        )
    return AcceleratorProfile("sad", tuple(modes))


def _filter_profile() -> AcceleratorProfile:
    """Filter modes: quality = SSIM vs exact on calibration content."""
    image = standard_images(64)["blobs"]
    exact = LowPassFilterAccelerator()
    reference = exact.apply(image)
    modes = [AcceleratorMode("exact", 1.0, exact.area_ge)]
    for label, (fa, lsbs) in (
        ("apx4", ("ApxFA1", 4)),
        ("apx5", ("ApxFA1", 5)),
        ("apx6", ("ApxFA5", 6)),
    ):
        accelerator = LowPassFilterAccelerator(fa=fa, approx_lsbs=lsbs)
        quality = ssim(reference, accelerator.apply(image))
        modes.append(AcceleratorMode(label, quality, accelerator.area_ge))
    return AcceleratorProfile("lowpass", tuple(modes))


def simulate_architecture():
    profiles = [_sad_profile(), _filter_profile()]

    def drifting_monitor(mode: AcceleratorMode, epoch: int) -> float:
        # Content difficulty oscillates: epochs 3-4 are hard.
        penalty = 0.02 if epoch in (3, 4) and mode.name != "exact" else 0.0
        return mode.quality - penalty

    applications = [
        RunningApplication("encoder", "sad", 0.97, ops_per_epoch=10_000),
        RunningApplication(
            "camera", "lowpass", 0.985, ops_per_epoch=2_000,
            quality_monitor=drifting_monitor,
        ),
        RunningApplication("preview", "lowpass", 0.9, ops_per_epoch=500),
    ]
    architecture = MultiAcceleratorArchitecture(profiles)
    records = architecture.run(applications, n_epochs=8)
    baseline = architecture.exact_baseline_energy(applications, 8)
    rows = [
        {
            "epoch": record.epoch,
            "modes": " ".join(
                f"{app}={mode}" for app, mode in record.modes.items()
            ),
            "violations": ",".join(record.violations) or "-",
            "energy": round(record.energy, 0),
        }
        for record in records
    ]
    return architecture, rows, baseline, applications


def test_multi_accelerator(benchmark):
    architecture, rows, baseline, applications = benchmark.pedantic(
        simulate_architecture, rounds=1, iterations=1
    )
    saving = 100 * (1 - architecture.total_energy() / baseline)
    emit(
        "multi_accelerator",
        format_records(
            rows, title="Managed multi-accelerator architecture (8 epochs)"
        )
        + f"\n\ntotal energy {architecture.total_energy():.0f} vs exact "
        f"baseline {baseline:.0f} ({saving:.1f}% saved)",
        data={
            "rows": rows,
            "total_energy": architecture.total_energy(),
            "exact_baseline": baseline,
            "saving_percent": saving,
        },
    )
    # The managed architecture saves energy over always-exact ...
    assert architecture.total_energy() < baseline
    assert saving > 5.0
    # ... while quality violations are transient (adaptation reacts
    # within one epoch).
    for app in applications:
        violations = architecture.violation_epochs(app.name)
        assert all(
            b - a > 1 or b == a for a, b in zip(violations, violations[1:])
        ) or len(violations) <= 2
