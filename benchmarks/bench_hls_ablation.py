"""Ablation: automatic (HLS) vs manual approximate-unit assignment.

Compares three ways of building a 16-term SAD accelerator at equal
*guaranteed* worst-case error:

* **manual-uniform**: every node gets the same approximate adder (the
  paper's manual methodology);
* **HLS-greedy**: our synthesizer assigns per-node units under the same
  bound;
* **exact**: the reference.

The synthesizer should never be worse than the uniform manual choice at
the same bound -- significance-aware assignment is the whole point.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.dataflow import DataflowAccelerator
from repro.accelerators.hls import (
    AdderCandidate,
    ApproximateSynthesizer,
)
from repro.characterization.report import format_records
from repro.errors.interval import adder_error_interval

from _util import emit

N_TERMS = 16


def sad_template() -> DataflowAccelerator:
    acc = DataflowAccelerator(f"sad{N_TERMS}")
    a = [acc.add_input(f"a{i}") for i in range(N_TERMS)]
    b = [acc.add_input(f"b{i}") for i in range(N_TERMS)]
    diffs = [
        acc.add_node("abs", [acc.add_node("sub", [a[i], b[i]])])
        for i in range(N_TERMS)
    ]
    while len(diffs) > 1:
        diffs = [
            acc.add_node("add", [diffs[i], diffs[i + 1]])
            for i in range(0, len(diffs), 2)
        ]
    acc.set_output(diffs[0])
    return acc


RANGES = {f"{p}{i}": (0, 255) for p in "ab" for i in range(N_TERMS)}


def _uniform_assignment(candidate: AdderCandidate):
    """Manually assign one candidate everywhere (paper-style)."""
    synth = ApproximateSynthesizer([candidate, AdderCandidate("exact", "AccuFA", 0)])
    acc = sad_template()
    # A huge budget makes the greedy keep the cheapest rung everywhere,
    # i.e. a uniform manual assignment.
    result = synth.synthesize(acc, RANGES, error_budget=1 << 60)
    return acc, result


def sweep_hls():
    rng = np.random.default_rng(5)
    stim = {name: rng.integers(0, 256, 20_000) for name in RANGES}
    exact_out = sad_template().evaluate(stim)
    rows = []
    for cand in (AdderCandidate("ApxFA1x2", "ApxFA1", 2),
                 AdderCandidate("ApxFA5x4", "ApxFA5", 4)):
        manual_acc, manual = _uniform_assignment(cand)
        manual_obs = np.abs(manual_acc.evaluate(stim) - exact_out)
        rows.append(
            {
                "strategy": f"manual-uniform({cand.name})",
                "bound": manual.error_bound,
                "area_ge": round(manual.area_ge, 0),
                "obs_max": int(manual_obs.max()),
                "obs_med": round(float(manual_obs.mean()), 2),
            }
        )
        # HLS at the SAME guaranteed bound.
        hls_acc = sad_template()
        hls = ApproximateSynthesizer().synthesize(
            hls_acc, RANGES, error_budget=manual.error_bound
        )
        hls_obs = np.abs(hls_acc.evaluate(stim) - exact_out)
        rows.append(
            {
                "strategy": f"HLS-greedy(budget={manual.error_bound})",
                "bound": hls.error_bound,
                "area_ge": round(hls.area_ge, 0),
                "obs_max": int(hls_obs.max()),
                "obs_med": round(float(hls_obs.mean()), 2),
            }
        )
    exact_acc = sad_template()
    exact_res = ApproximateSynthesizer().synthesize(exact_acc, RANGES, 0)
    rows.append(
        {
            "strategy": "exact",
            "bound": 0,
            "area_ge": round(exact_res.area_ge, 0),
            "obs_max": 0,
            "obs_med": 0.0,
        }
    )
    return rows


def test_hls_ablation(benchmark):
    rows = benchmark.pedantic(sweep_hls, rounds=1, iterations=1)
    emit(
        "hls_ablation",
        format_records(
            rows, title="Manual uniform vs HLS assignment (16-term SAD)"
        ),
        data={"rows": rows},
    )
    by_strategy = {r["strategy"]: r for r in rows}
    for cand in ("ApxFA1x2", "ApxFA5x4"):
        manual = by_strategy[f"manual-uniform({cand})"]
        hls = by_strategy[f"HLS-greedy(budget={manual['bound']})"]
        # Equal or tighter guaranteed bound at equal or lower area.
        assert hls["bound"] <= manual["bound"]
        assert hls["area_ge"] <= manual["area_ge"] + 1e-9
        # Everything is sound.
        assert manual["obs_max"] <= manual["bound"]
        assert hls["obs_max"] <= hls["bound"]
