"""Reproduction of Fig. 9: bit-rate increase vs approximated LSBs.

Encodes a synthetic sequence with the HEVC-lite encoder, swapping the
motion-estimation SAD accelerator across every ApxSAD variant and 2/4/6
approximated LSBs, and prints the % bit-rate increase over the accurate
encode plus the accelerator power model (the paper's 2-bit vs 4-bit
power observation).
"""

from __future__ import annotations

from repro.accelerators.sad import SAD_VARIANT_CELLS, SADAccelerator
from repro.characterization.report import format_records
from repro.media.synthetic import moving_sequence
from repro.video.codec import HevcLiteEncoder

from _util import emit

LSB_SWEEP = (2, 4, 6)


def sweep_fig9():
    frames = moving_sequence(n_frames=4, size=64, noise_sigma=3.0)
    encoder = HevcLiteEncoder(search_range=4, qp=4)
    baseline = encoder.encode(frames, SADAccelerator(n_pixels=64))
    rows = []
    for variant, cell in SAD_VARIANT_CELLS.items():
        if variant == "AccuSAD":
            continue
        for lsbs in LSB_SWEEP:
            accelerator = SADAccelerator(n_pixels=64, fa=cell, approx_lsbs=lsbs)
            result = encoder.encode(frames, accelerator)
            rows.append(
                {
                    "variant": variant,
                    "approx_lsbs": lsbs,
                    "bits": result.total_bits,
                    "bitrate_increase_%": round(
                        result.bitrate_increase_percent(baseline), 2
                    ),
                    "psnr_db": round(result.psnr_db, 2),
                    "sad_energy_fJ/op": round(accelerator.energy_per_op_fj, 0),
                }
            )
    return baseline, rows


def test_fig9(benchmark):
    baseline, rows = benchmark.pedantic(sweep_fig9, rounds=1, iterations=1)
    header = (
        f"Baseline (AccuSAD): {baseline.total_bits} bits, "
        f"{baseline.psnr_db:.2f} dB\n\n"
    )
    emit(
        "fig9_hevc_bitrate",
        header + format_records(
            rows, title="Fig. 9: bit-rate increase vs approximated LSBs"
        ),
        data={
            "baseline": {
                "total_bits": baseline.total_bits,
                "psnr_db": baseline.psnr_db,
            },
            "rows": rows,
        },
    )
    by_variant = {}
    for row in rows:
        by_variant.setdefault(row["variant"], {})[row["approx_lsbs"]] = row
    for variant, sweep in by_variant.items():
        # Bit-rate increase grows with the number of approximated LSBs,
        # with 6 LSBs clearly worse than 2 (the paper's conclusion).
        assert (
            sweep[2]["bitrate_increase_%"]
            <= sweep[4]["bitrate_increase_%"] + 0.3
        ), variant
        assert (
            sweep[6]["bitrate_increase_%"] > sweep[2]["bitrate_increase_%"]
        ), variant
        # 4-bit approximation consumes less power than 2-bit, always.
        assert (
            sweep[4]["sad_energy_fJ/op"] < sweep[2]["sad_energy_fJ/op"]
        ), variant
