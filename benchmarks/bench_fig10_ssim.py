"""Reproduction of Fig. 10: SSIM after low-pass filtering, per image.

Applies the accurate and an approximate low-pass filter to the 7-image
content-class suite and prints per-image SSIM -- the data-dependent
resilience spread of Sec. 6.2.
"""

from __future__ import annotations

from repro.accelerators.filters import LowPassFilterAccelerator
from repro.characterization.report import format_records
from repro.media.msssim import ms_ssim
from repro.media.ssim import ssim
from repro.media.synthetic import standard_images

from _util import emit


def sweep_fig10():
    images = standard_images(64)
    exact = LowPassFilterAccelerator()
    filters = {
        "ApxFA1/4": LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=4),
        "ApxFA1/5": LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=5),
        "ApxFA5/4": LowPassFilterAccelerator(fa="ApxFA5", approx_lsbs=4),
    }
    rows = []
    for name, image in images.items():
        reference = exact.apply(image)
        row = {"image": name}
        for filter_name, accelerator in filters.items():
            row[f"ssim[{filter_name}]"] = round(
                ssim(reference, accelerator.apply(image)), 4
            )
        row["msssim[ApxFA1/5]"] = round(
            ms_ssim(
                reference.astype(float),
                filters["ApxFA1/5"].apply(image).astype(float),
            ),
            4,
        )
        rows.append(row)
    return rows


def test_fig10(benchmark):
    rows = benchmark.pedantic(sweep_fig10, rounds=1, iterations=1)
    emit(
        "fig10_ssim",
        format_records(
            rows,
            title="Fig. 10: SSIM after approximate low-pass filtering "
            "(7 content classes)",
        ),
        data={"rows": rows},
    )
    assert len(rows) == 7
    # Data-dependent resilience: for the same filter, SSIM varies across
    # images -- and every image stays perceptually recognizable.
    for key in rows[0]:
        if key == "image":
            continue
        scores = [row[key] for row in rows]
        assert max(scores) - min(scores) > 0.0005, key
        assert all(s > 0.5 for s in scores), key
