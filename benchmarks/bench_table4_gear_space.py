"""Reproduction of Table IV: accuracy/area of every N=11 GeAr config.

The paper tabulates the model-predicted accuracy percentage and the
Virtex-6 LUT count for all valid (R, P) combinations of an 11-bit GeAr
adder.  We print the analytic accuracy (exact DP model), the paper's
inclusion-exclusion model, a Monte-Carlo cross-check, and our LUT/area
proxies.
"""

from __future__ import annotations

from repro.adders.gear import GeArConfig
from repro.adders.gear_error import (
    monte_carlo_error_rate,
    paper_error_probability,
)
from repro.characterization.report import format_records
from repro.dse.explorer import explore_gear_space

from _util import emit


def sweep_table4():
    records = explore_gear_space(11, model="exact")
    for record in records:
        config = GeArConfig(11, record["r"], record["p"])
        record["acc%_paperIE"] = round(
            100 * (1 - paper_error_probability(config)), 2
        )
        record["acc%_mc"] = round(
            100 * (1 - monte_carlo_error_rate(config, n_samples=100_000)), 2
        )
        record["accuracy_percent"] = round(record["accuracy_percent"], 2)
        record["area_ge"] = round(record["area_ge"], 1)
        record["delay_ps"] = round(record["delay_ps"], 1)
    return records


def test_table4(benchmark):
    records = benchmark.pedantic(sweep_table4, rounds=1, iterations=1)
    emit(
        "table4_gear_space",
        format_records(
            records,
            columns=["r", "p", "k", "l", "accuracy_percent", "acc%_paperIE",
                     "acc%_mc", "lut_count", "area_ge", "delay_ps"],
            title="Table IV: N=11 GeAr accuracy/area sweep (exact DP model)",
        ),
        data={"records": records},
    )
    assert len(records) == 17
    best = max(records, key=lambda r: r["accuracy_percent"])
    assert (best["r"], best["p"]) == (1, 9)  # paper's max-accuracy pick
    # The three accuracy models agree within a percentage point.
    for record in records:
        assert abs(record["accuracy_percent"] - record["acc%_mc"]) < 1.0
