"""Partitioned-SIMD datapath vs the LUT fast paths, Fig. 6 / Fig. 8 kernels.

Times the two bulk kernels the partitioned evaluator was built for
under both engines (``eval_mode="partsim"`` vs the default ``"auto"``
fast paths), verifies the results are bit-identical, and records the
speedups under ``benchmarks/results/partsim_speedup.txt`` plus the
machine-readable ``BENCH_partsim_speedup.json`` that CI's threshold
check consumes.

The acceptance bar (ISSUE/PR 7) is 5x on both gated kernels:

* the Fig. 6 error-case count of a 16x16 recursive multiplier, where
  ``partsim`` replaces the recursion above the 8x8 level with quadrant
  sub-product gathers;
* the Fig. 8 full-search SAD surface, where :func:`sad_surface` keeps
  the whole (block, displacement) grid in the packed word domain.
"""

from __future__ import annotations

import time

import numpy as np

from repro.accelerators.sad import SADAccelerator
from repro.characterization.report import format_records
from repro.datapath.partsim import sad_surface, sad_surface_reference
from repro.multipliers.recursive import RecursiveMultiplier

from _util import emit

MUL_WIDTH = 16
MUL_SAMPLES = 200_000
FRAME = 256
BLOCK = 8
SEARCH = 4
GATE = 5.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _row(kernel, auto_s, partsim_s, identical):
    return {
        "kernel": kernel,
        "auto_ms": round(auto_s * 1e3, 2),
        "partsim_ms": round(partsim_s * 1e3, 3),
        "speedup": round(auto_s / partsim_s, 1),
        "bit_identical": identical,
    }


def _fig6_multiplier_kernel():
    """Fig. 6 error-case count for the 16x16 approximate recursive
    multiplier: every product against the exact reference over a bulk
    random operand sweep."""
    rng = np.random.default_rng(2016)
    a = rng.integers(0, 1 << MUL_WIDTH, MUL_SAMPLES)
    b = rng.integers(0, 1 << MUL_WIDTH, MUL_SAMPLES)
    auto = RecursiveMultiplier(MUL_WIDTH, leaf_mul="ApxMulOur")
    partsim = RecursiveMultiplier(
        MUL_WIDTH, leaf_mul="ApxMulOur", eval_mode="partsim"
    )
    # Warm up both engines outside the timers (LUT construction).
    auto.multiply(a[:64], b[:64])
    partsim.multiply(a[:64], b[:64])
    p_auto, auto_s = _timed(lambda: auto.multiply(a, b))
    p_part, partsim_s = _timed(lambda: partsim.multiply(a, b))
    identical = bool(np.array_equal(p_auto, p_part))
    errors = int((p_part != a * b).sum())
    row = _row("fig6_mul16x16_error_cases", auto_s, partsim_s, identical)
    row["error_cases"] = errors
    return row


def _fig8_sad_surface_kernel():
    """Fig. 8 full-search SAD surface on a 256x256 frame pair: the
    packed surface kernel vs the bulk batch-``sad`` formulation."""
    rng = np.random.default_rng(1998)
    cur = rng.integers(0, 256, (FRAME, FRAME))
    ref = np.clip(cur + rng.integers(-12, 13, cur.shape), 0, 255)
    n_pixels = BLOCK * BLOCK
    partsim = SADAccelerator(n_pixels, eval_mode="partsim")
    auto = SADAccelerator(n_pixels)
    # Warm-up pass builds the absdiff LUTs and packing scratch.
    sad_surface(partsim, cur[:32, :32], ref[:32, :32], BLOCK, search=2)
    sad_surface_reference(auto, cur[:32, :32], ref[:32, :32], BLOCK, search=2)
    s_part, partsim_s = _timed(
        lambda: sad_surface(partsim, cur, ref, BLOCK, search=SEARCH)
    )
    s_auto, auto_s = _timed(
        lambda: sad_surface_reference(auto, cur, ref, BLOCK, search=SEARCH)
    )
    identical = bool(np.array_equal(s_auto, s_part))
    return _row("fig8_sad_surface_256", auto_s, partsim_s, identical)


def sweep_speedups():
    return [
        _fig6_multiplier_kernel(),
        _fig8_sad_surface_kernel(),
    ]


def test_partsim_speedup(benchmark):
    rows = benchmark.pedantic(sweep_speedups, rounds=1, iterations=1)
    emit(
        "partsim_speedup",
        format_records(
            rows,
            title="Partitioned-SIMD datapath vs LUT fast paths "
            "(Fig. 6 multiplier / Fig. 8 SAD surface kernels)",
        ),
        data={"rows": rows},
        config={
            "mul_width": MUL_WIDTH,
            "mul_samples": MUL_SAMPLES,
            "frame": FRAME,
            "block_size": BLOCK,
            "search": SEARCH,
            "gate": GATE,
        },
    )
    assert all(r["bit_identical"] for r in rows), rows
    # Both acceptance kernels are gated at 5x (ISSUE/PR 7).
    for row in rows:
        assert row["speedup"] >= GATE, rows
