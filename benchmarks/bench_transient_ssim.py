"""Transient fault-rate vs SSIM curve for the low-pass filter.

Sweeps per-bit single-event-upset rates through the architecture-layer
injector (:class:`repro.resilience.arch.FaultyLowPassFilter`: upsets on
the 9 line-buffer window terms and every adder-tree level) and measures
output SSIM against the exact 3x3 binomial filter on the Fig. 10 image
set.  This is the quantitative degradation curve behind
``docs/RESILIENCE.md``: quality falls smoothly with rate instead of
cliff-dropping, which is what makes online QoS monitoring (QosGuard)
actionable -- a canary check sees the degradation before it is
catastrophic.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.filters import (
    LowPassFilterAccelerator,
    gaussian3x3_exact,
)
from repro.campaign.task import derive_seed
from repro.characterization.report import format_records
from repro.media.ssim import ssim
from repro.media.synthetic import standard_images
from repro.resilience import FaultPlan, FaultyLowPassFilter

from _util import emit

RATES = [0.0, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2]
SIZE = 64
SEED = 0


def sweep_transient_ssim():
    images = standard_images(SIZE)
    accelerator = LowPassFilterAccelerator()
    rows = []
    for rate in RATES:
        plan = FaultPlan(
            seed=derive_seed(SEED, "bench-transient-ssim", repr(rate)),
            rate=rate,
            layer="architecture",
        )
        faulty = FaultyLowPassFilter(accelerator, plan)
        ssims = []
        pixel_error_rates = []
        for image in images.values():
            reference = gaussian3x3_exact(image)
            out = faulty.apply(image)
            ssims.append(ssim(reference, out))
            pixel_error_rates.append(float(np.mean(out != reference)))
        rows.append({
            "rate": rate,
            "ssim_mean": round(float(np.mean(ssims)), 4),
            "ssim_min": round(float(np.min(ssims)), 4),
            "pixel_error_rate": round(float(np.mean(pixel_error_rates)), 4),
        })
    return rows


def test_transient_ssim(benchmark):
    rows = benchmark.pedantic(sweep_transient_ssim, rounds=1, iterations=1)
    emit(
        "transient_ssim",
        format_records(
            rows,
            title="Transient fault rate vs SSIM, 3x3 low-pass filter "
            f"({SIZE}x{SIZE}, 7 content classes)",
        ),
        data={"rows": rows},
        config={"rates": RATES, "size": SIZE, "seed": SEED},
    )
    by_rate = {row["rate"]: row for row in rows}
    # Zero rate is the exact filter.
    assert by_rate[0.0]["ssim_mean"] == 1.0
    assert by_rate[0.0]["pixel_error_rate"] == 0.0
    # Quality degrades monotonically (weakly) with rate and the heaviest
    # rate visibly damages the output.
    means = [row["ssim_mean"] for row in rows]
    assert all(a >= b - 0.02 for a, b in zip(means, means[1:]))
    assert by_rate[5e-2]["ssim_mean"] < 0.9
