"""Ablation for Sec. 6.1: consolidated vs integrated error correction.

Quantifies (a) the area argument -- one shared CEC unit vs per-adder EDC
for growing accelerator cascades -- and (b) the quality recovered by CEC
on a real approximate SAD accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.cec import ConsolidatedErrorCorrection, edc_area_comparison
from repro.accelerators.sad import SADAccelerator
from repro.characterization.report import format_records

from _util import emit


def sweep_cec():
    area_rows = []
    for n_adders in (2, 4, 8, 16, 32, 63):
        cmp = edc_area_comparison(n_adders)
        area_rows.append(
            {
                "n_adders": n_adders,
                "integrated_EDC_GE": cmp.integrated_edc_ge,
                "consolidated_GE": cmp.consolidated_ge,
                "saving_%": round(cmp.saving_percent, 1),
            }
        )

    rng = np.random.default_rng(7)
    quality_rows = []
    exact = SADAccelerator(n_pixels=16)
    for cell, lsbs in (("ApxFA1", 5), ("ApxFA2", 5), ("ApxFA5", 4)):
        approx = SADAccelerator(n_pixels=16, fa=cell, approx_lsbs=lsbs)
        cec = ConsolidatedErrorCorrection(approx.sad, exact.sad)
        a_cal = rng.integers(0, 256, (4000, 16))
        b_cal = rng.integers(0, 256, (4000, 16))
        offset = cec.calibrate(a_cal, b_cal)
        a = rng.integers(0, 256, (3000, 16))
        b = rng.integers(0, 256, (3000, 16))
        truth = exact.sad(a, b)
        raw_med = float(np.abs(approx.sad(a, b) - truth).mean())
        cec_med = float(np.abs(cec(a, b) - truth).mean())
        quality_rows.append(
            {
                "accelerator": approx.name,
                "offset": offset,
                "MED_raw": round(raw_med, 2),
                "MED_with_CEC": round(cec_med, 2),
                "recovered_%": round(100 * (1 - cec_med / raw_med), 1)
                if raw_med
                else 0.0,
            }
        )
    return area_rows, quality_rows


def test_cec_ablation(benchmark):
    area_rows, quality_rows = benchmark.pedantic(sweep_cec, rounds=1, iterations=1)
    emit(
        "cec_ablation",
        format_records(area_rows, title="CEC vs integrated EDC: area")
        + "\n\n"
        + format_records(quality_rows, title="CEC quality recovery on SAD"),
        data={"area_rows": area_rows, "quality_rows": quality_rows},
    )
    # Area savings grow with cascade size and cross 80% by 16 adders.
    savings = [row["saving_%"] for row in area_rows]
    assert savings == sorted(savings)
    assert dict((r["n_adders"], r["saving_%"]) for r in area_rows)[16] > 80
    # CEC reduces mean error on every accelerator variant.
    assert all(r["MED_with_CEC"] <= r["MED_raw"] for r in quality_rows)
    assert any(r["recovered_%"] > 10 for r in quality_rows)
