"""Reproduction of Fig. 8: SAD error surfaces of approximate variants.

For one motion-search window, prints the exact SAD surface and each
ApxSAD variant's surface statistics: mean shift, correlation with the
exact surface, and whether the global minimum (the motion vector) is
preserved.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.sad import SADAccelerator, make_sad_variants
from repro.characterization.report import format_records, format_table
from repro.media.synthetic import moving_sequence
from repro.video.motion import sad_surface

from _util import emit

# A background block with a distinct global-motion match (like the
# strongly textured content of the paper's video case study).
BLOCK = (48, 48)
SEARCH = 4


def sweep_fig8():
    frames = moving_sequence(n_frames=2, size=64, noise_sigma=2.0)
    cur, ref = frames[1], frames[0]
    exact = SADAccelerator(n_pixels=64)
    surface_exact = sad_surface(cur, ref, BLOCK, 8, SEARCH, exact)
    rows = []
    surfaces = {"AccuSAD": surface_exact}
    for name, variant in make_sad_variants(
        approx_lsbs=4, include_accurate=False
    ).items():
        surface = sad_surface(cur, ref, BLOCK, 8, SEARCH, variant)
        surfaces[name] = surface
        valid = surface_exact < (1 << 62)
        delta = surface[valid].astype(float) - surface_exact[valid]
        corr = float(
            np.corrcoef(
                surface[valid].astype(float),
                surface_exact[valid].astype(float),
            )[0, 1]
        )
        rows.append(
            {
                "variant": name,
                "mean_shift": round(float(delta.mean()), 1),
                "max_|shift|": int(np.abs(delta).max()),
                "corr_with_exact": round(corr, 4),
                "argmin_preserved": bool(
                    np.argmin(surface) == np.argmin(surface_exact)
                ),
            }
        )
    return surface_exact, surfaces, rows


def test_fig8(benchmark):
    surface_exact, surfaces, rows = benchmark.pedantic(
        sweep_fig8, rounds=1, iterations=1
    )
    side = surface_exact.shape[0]
    header = ["dy\\dx"] + [str(dx - SEARCH) for dx in range(side)]
    grid = [
        [str(dy - SEARCH)] + [int(v) for v in surface_exact[dy]]
        for dy in range(side)
    ]
    parts = [
        format_table(header, grid, title="Fig. 8: exact SAD surface"),
        format_records(rows, title="Approximate variants vs exact surface"),
    ]
    emit(
        "fig8_sad_surface",
        "\n\n".join(parts),
        data={"rows": rows, "surface_exact": surface_exact},
        config={"search": SEARCH},
    )
    # Shape: every variant's surface follows the exact trend, and the
    # motion vector survives on this distinct-minimum block.
    assert all(r["corr_with_exact"] > 0.9 for r in rows)
    assert all(r["argmin_preserved"] for r in rows)
