"""Ablation: accuracy-configurable GeAr modes (paper Sec. 4.2 / 6).

The configuration word selects how many error-correction iterations the
GeAr recovery circuitry may run.  This bench characterizes the full
quality/latency/energy trade-off of every mode for three adder
configurations -- the data an approximation management unit would use.
"""

from __future__ import annotations

from repro.adders.configurable import ConfigurableGeArAdder
from repro.adders.gear import GeArConfig
from repro.characterization.report import format_records

from _util import emit


def sweep_modes():
    rows = []
    for cfg in ((16, 2, 2), (16, 4, 4), (12, 4, 4)):
        adder = ConfigurableGeArAdder(GeArConfig(*cfg))
        for record in adder.characterize_modes(n_samples=40_000):
            rows.append(
                {
                    "adder": adder.config.name,
                    "mode": record.mode,
                    "error_rate": round(record.error_rate, 5),
                    "MED": round(record.mean_error_distance, 3),
                    "mean_cycles": round(record.mean_cycles, 4),
                    "rel_energy": round(record.relative_energy, 4),
                }
            )
    return rows


def test_config_modes(benchmark):
    rows = benchmark.pedantic(sweep_modes, rounds=1, iterations=1)
    emit(
        "config_modes",
        format_records(
            rows,
            title="Accuracy-configurable GeAr: quality vs latency/energy "
            "per mode",
        ),
        data={"rows": rows},
    )
    by_adder = {}
    for row in rows:
        by_adder.setdefault(row["adder"], []).append(row)
    for adder, modes in by_adder.items():
        modes.sort(key=lambda r: r["mode"])
        error_rates = [m["error_rate"] for m in modes]
        energies = [m["rel_energy"] for m in modes]
        # Quality improves monotonically with the mode; the top mode is
        # exact; latency/energy never decrease.
        assert error_rates == sorted(error_rates, reverse=True), adder
        assert error_rates[-1] == 0.0, adder
        assert energies == sorted(energies), adder
        assert modes[0]["mean_cycles"] == 1.0, adder
